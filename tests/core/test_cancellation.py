"""Cooperative cancellation / deadline hook (``should_stop``).

The service layer (``repro.service``) relies on three guarantees when the
hook fires mid-search: the run ends promptly, the binding is left at the
*best allocation seen so far* (not wherever the random walk happened to
be), and the telemetry records the early stop so callers can mark the
result degraded.
"""

from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import AnnealConfig, ImproveConfig, anneal, improve, \
    initial_allocation
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


def fresh_binding(length=19, extra_regs=1):
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, SPEC, length)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + extra_regs))


class CountdownStop:
    """A should_stop callback that fires after N checks."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.calls = 0

    def __call__(self) -> bool:
        self.calls += 1
        return self.calls > self.after


class TestImproveCancellation:
    def test_early_stop_returns_best_so_far(self):
        binding = fresh_binding()
        stop = CountdownStop(after=120)
        stats = improve(binding, ImproveConfig(
            max_trials=50, moves_per_trial=500, seed=7, should_stop=stop))
        assert stats.stopped_early
        # the callback is polled once per attempted move, so the search
        # ended promptly after it fired
        assert stats.moves_attempted <= 121
        assert stats.trials_run < 50
        # the binding ends at the recorded best, which is a legal
        # allocation whose cost matches the telemetry's final cost
        assert check_binding(binding) == []
        assert binding.cost().total == stats.final_cost.total
        assert stats.final_cost.total <= stats.initial_cost.total
        # best_trace/cost_trace/timings cover the truncated trial too
        assert stats.best_trace and stats.best_trace[0][0] == 0
        assert len(stats.cost_trace) == stats.trials_run
        assert len(stats.trial_seconds) == stats.trials_run
        assert len(stats.uphill_used) == stats.trials_run

    def test_stop_before_first_move(self):
        binding = fresh_binding()
        stats = improve(binding, ImproveConfig(
            max_trials=4, moves_per_trial=100, seed=8,
            should_stop=lambda: True))
        assert stats.stopped_early
        assert stats.moves_attempted == 0
        assert check_binding(binding) == []
        assert binding.cost().total == stats.final_cost.total

    def test_no_callback_unchanged(self):
        binding = fresh_binding()
        stats = improve(binding, ImproveConfig(
            max_trials=2, moves_per_trial=100, seed=9))
        assert not stats.stopped_early

    def test_stopped_early_round_trips(self):
        binding = fresh_binding()
        stats = improve(binding, ImproveConfig(
            max_trials=4, moves_per_trial=200, seed=10,
            should_stop=CountdownStop(after=50)))
        assert stats.stopped_early
        from repro.core.improve import ImproveStats
        reloaded = ImproveStats.from_json(stats.to_json())
        assert reloaded.stopped_early
        # payloads missing the field (pre-service telemetry) default False
        legacy = stats.to_dict()
        del legacy["stopped_early"]
        assert not ImproveStats.from_dict(legacy).stopped_early


class TestAnnealCancellation:
    def test_early_stop_returns_best_so_far(self):
        binding = fresh_binding()
        stop = CountdownStop(after=150)
        stats = anneal(binding, AnnealConfig(
            temperature_levels=30, moves_per_level=400, seed=7,
            should_stop=stop))
        assert stats.stopped_early
        assert stats.moves_attempted <= 151
        assert stats.trials_run < 30
        assert check_binding(binding) == []
        assert binding.cost().total == stats.final_cost.total
        assert stats.final_cost.total <= stats.initial_cost.total
        assert len(stats.cost_trace) == stats.trials_run
        assert len(stats.trial_seconds) == stats.trials_run
