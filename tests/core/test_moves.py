"""Unit tests for the SALSA move set (paper Table 1).

Every move is exercised through a randomized harness that checks three
properties after each application: the binding stays legal, the undo
closures restore the exact cost, and the ledger stays consistent.
"""

import random

import pytest

from repro.errors import BindingError
from repro.core import moves as M
from repro.alloc.checker import check_binding


ALL_MOVES = dict(M.MoveSet._TABLE)


def force_passthrough(binding) -> None:
    """Deterministically bind one pass-through, creating a transfer first
    if none exists — so pass-through tests never depend on what the
    randomized phase happened to produce."""
    def try_bind():
        for (value, step), regs in sorted(binding.placements.items()):
            prev = binding.interval(value).predecessor_step(step)
            if prev is None:
                continue
            prev_regs = binding.segment_regs(value, prev)
            if not prev_regs:
                continue
            for dst in regs:
                if dst in prev_regs:
                    continue
                for fu_name in sorted(binding.fus):
                    if not binding.fus[fu_name].fu_type.can_passthrough:
                        continue
                    if not binding.fu_free(fu_name, prev):
                        continue
                    try:
                        binding.set_pt(value, step, dst,
                                       (prev_regs[0], fu_name, 0))
                    except BindingError:
                        continue
                    binding.flush()
                    return True
        return False

    if try_bind():
        return
    # no transfer available: manufacture one by moving a mid-lifetime
    # segment into a free register, then bind the pass-through
    for (value, step), regs in sorted(binding.placements.items()):
        prev = binding.interval(value).predecessor_step(step)
        if prev is None or len(regs) != 1:
            continue
        prev_regs = binding.segment_regs(value, prev)
        if not prev_regs or regs[0] not in prev_regs:
            continue
        for free in sorted(binding.regs):
            if free in prev_regs or not binding.reg_free(free, step):
                continue
            binding.set_placements(value, step, (free,))
            M.fixup_segment(binding, value, step)
            binding.flush()
            if try_bind():
                return
    pytest.fail("could not construct a pass-through on this binding")


def run_move_many(binding, fn, seed=0, n=60, accept=lambda d: d <= 2.0):
    """Apply a move repeatedly, sometimes keeping it, checking legality."""
    rng = random.Random(seed)
    base = binding.cost().total
    applied = 0
    for _ in range(n):
        undos = fn(binding, rng)
        if undos is None:
            continue
        applied += 1
        new = binding.cost().total
        problems = check_binding(binding)
        assert problems == [], (fn.__name__, problems[:3])
        if not accept(new - base):
            M.rollback(undos)
            binding.flush()
            assert binding.cost().total == pytest.approx(base)
            assert check_binding(binding) == []
        else:
            base = new
    return applied


@pytest.mark.parametrize("name", sorted(ALL_MOVES))
def test_move_preserves_legality_and_undo(name, ewf19_binding):
    fn = ALL_MOVES[name]
    applied = run_move_many(ewf19_binding, fn, seed=11)
    # every move must actually fire on a real benchmark binding, except
    # F4/F5/R6 which need transfers/pass-throughs/copies to exist first
    if name not in ("F4", "F5", "R6"):
        assert applied > 0, f"move {name} never applied"


def test_f5_fires_after_f4(ewf19_binding):
    rng = random.Random(2)
    # create transfers (R2b hops), then pass-throughs, then unbind them
    for _ in range(40):
        M.move_segment_hop(ewf19_binding, rng)
    for _ in range(40):
        M.move_bind_passthrough(ewf19_binding, rng)
    if not ewf19_binding.pt_impl:
        # never skip: fall back to a deterministically constructed one
        force_passthrough(ewf19_binding)
    assert ewf19_binding.pt_impl
    undos = M.move_unbind_passthrough(ewf19_binding, rng)
    assert undos is not None
    assert check_binding(ewf19_binding) == []


def test_r6_fires_after_r5(ewf19_binding):
    rng = random.Random(3)
    made = None
    for _ in range(60):
        made = M.move_value_split(ewf19_binding, rng) or made
    assert made is not None
    assert any(len(r) > 1 for r in ewf19_binding.placements.values())
    undos = M.move_value_merge(ewf19_binding, rng)
    assert undos is not None
    assert check_binding(ewf19_binding) == []


def test_operand_reverse_toggles(diffeq_binding):
    rng = random.Random(0)
    before = dict(diffeq_binding.op_swap)
    undos = M.move_operand_reverse(diffeq_binding, rng)
    assert undos is not None
    assert diffeq_binding.op_swap != before
    M.rollback(undos)
    assert {k: v for k, v in diffeq_binding.op_swap.items() if v} == \
        {k: v for k, v in before.items() if v}


def test_fu_exchange_swaps_assignments(ewf19_binding):
    rng = random.Random(5)
    before = dict(ewf19_binding.op_fu)
    for _ in range(30):
        undos = M.move_fu_exchange(ewf19_binding, rng)
        if undos is not None:
            break
    else:
        pytest.fail("F1 never applied")
    changed = {op for op in before
               if ewf19_binding.op_fu[op] != before[op]}
    assert len(changed) == 2
    a, b = sorted(changed)
    assert ewf19_binding.op_fu[a] == before[b] or \
        ewf19_binding.op_fu[b] == before[a]


def test_value_move_collapses_to_single_register(ewf19_binding):
    rng = random.Random(9)
    for _ in range(30):
        M.move_segment_hop(ewf19_binding, rng)  # create some splits
    for _ in range(60):
        undos = M.move_value_move(ewf19_binding, rng)
        if undos is not None:
            break
    assert check_binding(ewf19_binding) == []


def test_move_set_gating():
    full = {name for name, _f, _w in M.MoveSet().enabled_moves()}
    assert full == set(ALL_MOVES)
    trad = {name for name, _f, _w in
            M.MoveSet.traditional().enabled_moves()}
    assert trad == {"F1", "F2", "F3", "R3", "R4"}
    no_pt = {name for name, _f, _w in
             M.MoveSet(passthroughs=False).enabled_moves()}
    assert "F4" not in no_pt and "F5" not in no_pt


def test_custom_weights_respected():
    ms = M.MoveSet(weights={"F1": 0.0, "F2": 5.0})
    enabled = {name: w for name, _f, w in ms.enabled_moves()}
    assert "F1" not in enabled
    assert enabled["F2"] == 5.0


def test_fixup_repairs_read_sources(ewf19_binding):
    binding = ewf19_binding
    # find a single-copy segment with a reader and move it manually
    for (value, step), regs in sorted(binding.placements.items()):
        readers = binding.reads_of(value, step)
        if len(regs) == 1 and readers:
            free = [r for r in sorted(binding.regs)
                    if binding.reg_free(r, step)]
            if not free:
                continue
            binding.set_placements(value, step, (free[0],))
            M.fixup_segment(binding, value, step)
            binding.flush()
            for op_name, port in readers:
                assert binding.read_src[(op_name, port)] == free[0]
            assert check_binding(binding) == []
            return
    pytest.fail("no movable read segment found")
