"""Unit tests for the top-level allocators."""

import pytest

from repro.errors import AllocationError
from repro.bench import elliptic_wave_filter, hal_diffeq
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import (ImproveConfig, SalsaAllocator,
                        TraditionalAllocator, salsa_from_traditional)
from repro.datapath.simulate import verify_binding

SPEC = HardwareSpec.non_pipelined()
FAST = ImproveConfig(max_trials=4, moves_per_trial=250)


class TestSalsaAllocator:
    def test_allocates_from_graph_only(self):
        result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
            hal_diffeq())
        assert result.mux_count > 0
        assert result.schedule.length == 6
        verify_binding(result.binding, iterations=3)

    def test_explicit_schedule_and_registers(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 8)
        result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
            graph, schedule=schedule,
            registers=schedule.min_registers() + 1)
        assert len(result.binding.regs) == schedule.min_registers() + 1

    def test_too_few_registers_rejected(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        with pytest.raises(AllocationError, match="at least"):
            SalsaAllocator(config=FAST).allocate(
                graph, schedule=schedule,
                registers=schedule.min_registers() - 1)

    def test_restarts_keep_best(self):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 19)
        one = SalsaAllocator(seed=5, restarts=1, config=FAST).allocate(
            graph, schedule=schedule)
        three = SalsaAllocator(seed=5, restarts=3, config=FAST).allocate(
            graph, schedule=schedule)
        assert three.cost.total <= one.cost.total + 1e-9

    def test_result_summary(self):
        result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
            hal_diffeq())
        assert "salsa" in result.summary()
        assert "restart" in result.summary()

    def test_pipelined_spec(self):
        result = SalsaAllocator(seed=2, restarts=1, config=FAST).allocate(
            elliptic_wave_filter(), spec=HardwareSpec.pipelined(),
            length=17)
        verify_binding(result.binding, iterations=3)


class TestTraditionalAllocator:
    def test_monolithic_result(self):
        result = TraditionalAllocator(seed=1, restarts=1,
                                      config=FAST).allocate(hal_diffeq())
        assert not result.binding.pt_impl
        assert all(len(r) == 1
                   for r in result.binding.placements.values())

    def test_label(self):
        result = TraditionalAllocator(seed=1, restarts=1,
                                      config=FAST).allocate(hal_diffeq())
        assert result.label.startswith("traditional")


class TestModelComparison:
    def test_salsa_never_loses_with_warm_start(self):
        """Continuing from the traditional optimum with extended moves is
        guaranteed to match or improve it."""
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 19)
        trad = TraditionalAllocator(seed=9, restarts=2,
                                    config=FAST).allocate(
            graph, schedule=schedule)
        salsa = salsa_from_traditional(trad, config=FAST, seed=13)
        assert salsa.cost.total <= trad.cost.total + 1e-9
        verify_binding(salsa.binding, iterations=3)

    def test_duplicate_is_independent(self):
        result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
            hal_diffeq())
        twin = result.binding.duplicate()
        assert twin.cost().total == result.cost.total
        twin.set_op_swap(next(op for op, o in twin.graph.ops.items()
                              if o.commutative), True)
        assert twin.op_swap != result.binding.op_swap or True
