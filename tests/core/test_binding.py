"""Unit tests for the extended binding state and its primitives."""

import pytest

from repro.errors import BindingError
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import ADDER, HardwareSpec, make_registers
from repro.sched.schedule import Schedule
from repro.core.binding import Binding
from repro.core.initial import initial_allocation, wire_reads
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


def small_binding():
    """op1@0 -> V1 live (1,2,3); op2@3 consumes it; 2 adders, 4 regs."""
    b = CDFGBuilder("small")
    b.input("a").input("b")
    b.add("op1", "a", "b", "V1")
    b.add("op2", "V1", "V1", "V2")
    b.output("V2")
    graph = b.build()
    schedule = Schedule(graph, HardwareSpec([ADDER]), 4,
                        {"op1": 0, "op2": 3})
    fus = schedule.spec.make_fus({"adder": 2})
    return Binding(schedule, fus, make_registers(4))


class TestOpBinding:
    def test_bind_and_token_claims(self):
        b = small_binding()
        b.set_op_fu("op1", "adder0")
        assert b.op_fu["op1"] == "adder0"
        assert b.fu_tokens[("adder0", 0)] == ("op", "op1")

    def test_conflict_rejected(self):
        b = small_binding()
        b.set_op_fu("op1", "adder0")
        # another op at a different step on the same FU is fine
        b.set_op_fu("op2", "adder0")
        # two independent ops scheduled at the same step clash on one FU
        bb = CDFGBuilder("clash")
        bb.input("a").input("b")
        bb.add("op1", "a", "b", "V1")
        bb.add("op2", "a", "b", "V2")
        bb.output("V1")
        bb.output("V2")
        graph = bb.build()
        schedule = Schedule(graph, HardwareSpec([ADDER]), 2,
                            {"op1": 0, "op2": 0})
        binding = Binding(schedule, schedule.spec.make_fus({"adder": 2}),
                          make_registers(4))
        binding.set_op_fu("op1", "adder0")
        with pytest.raises(BindingError, match="busy"):
            binding.set_op_fu("op2", "adder0")

    def test_incapable_fu_rejected(self):
        b = small_binding()
        with pytest.raises(BindingError, match="unknown FU"):
            b.set_op_fu("op1", "mult0")

    def test_unbind_releases_tokens(self):
        b = small_binding()
        b.set_op_fu("op1", "adder0")
        b.set_op_fu("op1", None)
        assert ("adder0", 0) not in b.fu_tokens

    def test_undo_restores(self):
        b = small_binding()
        b.set_op_fu("op1", "adder0")
        undo = b.set_op_fu("op1", "adder1")
        undo()
        assert b.op_fu["op1"] == "adder0"

    def test_swap_requires_commutative(self):
        b = CDFGBuilder("s")
        b.input("x").input("y")
        b.sub("d", "x", "y", "z")
        b.output("z")
        graph = b.build()
        schedule = Schedule(graph, SPEC, 2, {"d": 0})
        binding = Binding(schedule, SPEC.make_fus({"adder": 1, "mult": 0}),
                          make_registers(3))
        with pytest.raises(BindingError, match="illegal"):
            binding.set_op_swap("d", True)


class TestPlacements:
    def test_place_and_occupancy(self):
        b = small_binding()
        b.set_placements("V1", 1, ("R0",))
        assert b.reg_occ[("R0", 1)] == "V1"
        assert b.segment_regs("V1", 1) == ("R0",)

    def test_conflict_rejected(self):
        b = small_binding()
        b.set_placements("V1", 1, ("R0",))
        b.set_placements("a", 0, ("R0",))  # different step: fine
        with pytest.raises(BindingError, match="holds"):
            b.set_placements("b", 0, ("R0",))

    def test_non_live_step_rejected(self):
        b = small_binding()
        with pytest.raises(BindingError, match="not live"):
            b.set_placements("V1", 0, ("R0",))

    def test_duplicate_regs_rejected(self):
        b = small_binding()
        with pytest.raises(BindingError, match="duplicate"):
            b.set_placements("V1", 1, ("R0", "R0"))

    def test_copies_allowed(self):
        b = small_binding()
        b.set_placements("V1", 1, ("R0", "R1"))
        assert b.reg_occ[("R0", 1)] == "V1"
        assert b.reg_occ[("R1", 1)] == "V1"

    def test_port_captured_rejected(self):
        b = small_binding()
        with pytest.raises(BindingError, match="port-captured"):
            b.set_placements("V2", 4, ("R0",))

    def test_undo(self):
        b = small_binding()
        b.set_placements("V1", 1, ("R0",))
        undo = b.set_placements("V1", 1, ("R1",))
        undo()
        assert b.segment_regs("V1", 1) == ("R0",)
        assert ("R1", 1) not in b.reg_occ


class TestCostDerivation:
    def full(self):
        b = small_binding()
        b.set_op_fu("op1", "adder0")
        b.set_op_fu("op2", "adder0")
        b.set_placements("a", 0, ("R0",))
        b.set_placements("b", 0, ("R1",))
        for step in (1, 2, 3):
            b.set_placements("V1", step, ("R2",))
        wire_reads(b)
        return b

    def test_no_transfer_for_contiguous_value(self):
        b = self.full()
        cost = b.cost()
        # sinks: adder0.0 {R0, R2}, adder0.1 {R1, R2}, R0/R1 in_port,
        # R2 {adder0}, out_port V2 {adder0} -> 2 muxes
        assert cost.mux_count == 2
        assert check_binding(b) == []

    def test_transfer_adds_connection(self):
        b = self.full()
        base_wires = b.cost().wire_count
        b.set_placements("V1", 3, ("R3",))
        b.set_read_src("op2", 0, "R3")
        b.set_read_src("op2", 1, "R3")
        b.flush()
        assert b.cost().wire_count >= base_wires + 1
        assert check_binding(b) == []

    def test_passthrough_reroutes_events(self):
        b = self.full()
        b.set_placements("V1", 3, ("R3",))
        b.set_read_src("op2", 0, "R3")
        b.set_read_src("op2", 1, "R3")
        # adder1 idle at step 2: legal pass-through
        b.set_pt("V1", 3, "R3", ("R2", "adder1", 0))
        b.flush()
        assert check_binding(b) == []
        assert b.fu_tokens[("adder1", 2)][0] == "pt"

    def test_pt_on_busy_fu_rejected(self):
        b = self.full()
        # two copies at step 3 -> two transfers at the 2->3 boundary; both
        # cannot pass through the single idle adder1 at step 2
        b.set_placements("V1", 3, ("R3", "R1"))
        b.set_read_src("op2", 0, "R3")
        b.set_read_src("op2", 1, "R3")
        b.set_pt("V1", 3, "R3", ("R2", "adder1", 0))
        with pytest.raises(BindingError, match="busy"):
            b.set_pt("V1", 3, "R1", ("R2", "adder1", 0))

    def test_pt_without_transfer_rejected(self):
        b = self.full()
        with pytest.raises(BindingError, match="no transfer"):
            b.set_pt("V1", 2, "R2", ("R2", "adder1", 0))

    def test_pt_stale_source_rejected(self):
        b = self.full()
        b.set_placements("V1", 3, ("R3",))
        with pytest.raises(BindingError, match="does not hold"):
            b.set_pt("V1", 3, "R3", ("R1", "adder1", 0))

    def test_used_counts(self):
        b = self.full()
        assert b.fu_used_count() == 1
        assert b.reg_used_count() == 3


class TestSnapshots:
    def test_clone_restore_roundtrip(self, ewf19_binding):
        binding = ewf19_binding
        snap = binding.clone_state()
        cost = binding.cost().total
        # scramble: move an op and a value
        import random
        from repro.core.moves import MoveSet, rollback
        rng = random.Random(3)
        for name, fn, _w in MoveSet().enabled_moves():
            fn(binding, rng)
        binding.restore_state(snap)
        assert binding.cost().total == pytest.approx(cost)
        assert check_binding(binding) == []
