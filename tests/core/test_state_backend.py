"""Differential regression: array-backed snapshots vs the legacy dicts.

The binding's hot state lives in interned integer columns
(:mod:`repro.core.arraystate`), but every snapshot is still a readable
legacy mapping and every restore accepts one.  These tests pin the
contract that makes that safe: the diff-replay restore path and the
name-keyed ``to_mapping()`` path must produce **bit-identical search
trajectories** — same best/cost traces, same final cost, same decision
dicts, and the same ``placements`` iteration order (dict order feeds the
transfer-enumeration RNG, so an ordering difference *is* a trajectory
difference).
"""

from __future__ import annotations

import pickle

import pytest

from repro.bench import discrete_cosine_transform, elliptic_wave_filter
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import (AnnealConfig, ImproveConfig, anneal, improve,
                        initial_allocation)
from repro.core.arraystate import CompactState
from repro.core.binding import Binding

SPEC = HardwareSpec.non_pipelined()


def fresh_binding(bench="ewf"):
    if bench == "ewf":
        graph, length = elliptic_wave_filter(), 17
    else:
        graph, length = discrete_cosine_transform(), 10
    schedule = schedule_graph(graph, SPEC, length)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))


def observables(binding):
    """Every live-binding datum a backend difference could perturb."""
    return (
        binding.total_cost(),
        sorted(binding.op_fu.items()),
        sorted((k, tuple(v)) for k, v in binding.placements.items()),
        list(binding.placements),  # iteration order is trajectory-relevant
        sorted(binding.read_src.items()),
        sorted(binding.pt_impl.items()),
        binding.derived_snapshot(),
    )


def trajectory(binding, stats):
    """Everything a backend difference could perturb, in one tuple."""
    return (
        tuple(stats.best_trace),
        tuple(stats.cost_trace),
        stats.final_cost.total,
    ) + observables(binding)


def force_legacy_backend(monkeypatch):
    """Route every clone/restore through the name-keyed dict snapshots."""
    original = Binding.clone_state
    monkeypatch.setattr(
        Binding, "clone_state",
        lambda self: original(self).to_mapping())


class TestImproveBackendParity:

    @pytest.mark.parametrize("bench", ["ewf", "dct"])
    @pytest.mark.parametrize("seed", [1, 9])
    def test_diff_replay_matches_legacy_restore(self, bench, seed,
                                                monkeypatch):
        config = ImproveConfig(max_trials=3, moves_per_trial=200,
                               seed=seed, sanitize=True, sanitize_every=32)
        binding = fresh_binding(bench)
        compact = trajectory(binding, improve(binding, config))

        with monkeypatch.context() as patch:
            force_legacy_backend(patch)
            binding = fresh_binding(bench)
            legacy = trajectory(binding, improve(binding, config))

        assert compact == legacy

    def test_anneal_backend_parity(self, monkeypatch):
        config = AnnealConfig(temperature_levels=4, moves_per_level=150,
                              seed=3, sanitize=True, sanitize_every=32)
        binding = fresh_binding("dct")
        compact = trajectory(binding, anneal(binding, config))

        with monkeypatch.context() as patch:
            force_legacy_backend(patch)
            binding = fresh_binding("dct")
            legacy = trajectory(binding, anneal(binding, config))

        assert compact == legacy


class TestSnapshotRoundTrips:

    def test_clone_equals_its_own_mapping(self):
        binding = fresh_binding("dct")
        state = binding.clone_state()
        assert isinstance(state, CompactState)
        assert state == state.to_mapping()
        assert state == binding.clone_state()

    def test_restore_round_trip_is_identity(self):
        # Both restore paths must agree bit-for-bit — including the
        # placements iteration order, which by design is NOT the clone
        # -time order after a restore (unchanged keys keep their live
        # position, diff keys re-enter in snapshot order), but IS a
        # deterministic function both paths must compute identically.
        def drift_and_restore(through_mapping):
            binding = fresh_binding("ewf")
            improve(binding, ImproveConfig(max_trials=1,
                                           moves_per_trial=150, seed=4))
            state = binding.clone_state()
            improve(binding, ImproveConfig(max_trials=1,
                                           moves_per_trial=150, seed=5,
                                           restart_from_best=False))
            binding.restore_state(state.to_mapping()
                                  if through_mapping else state)
            return state, binding, observables(binding)

        state, binding, via_compact = drift_and_restore(False)
        _, _, via_mapping = drift_and_restore(True)
        assert via_compact == via_mapping
        # and the restored binding's decision content is the snapshot's
        assert state == binding.clone_state()

    def test_payload_round_trip(self):
        binding = fresh_binding("dct")
        improve(binding, ImproveConfig(max_trials=1, moves_per_trial=150,
                                       seed=7))
        state = binding.clone_state()
        decoded = CompactState.from_payload(state.to_payload())
        assert decoded == state
        other = fresh_binding("dct")
        other.restore_state(decoded)
        assert other.total_cost() == pytest.approx(binding.total_cost())
        # a decoded payload carries no live insertion order, so its view
        # materializes in sorted-segment order (the legacy codec's order)
        decoded_view = decoded["placements"]
        assert list(decoded_view) == sorted(decoded_view)

    def test_pickle_drops_derived_but_keeps_decisions(self):
        binding = fresh_binding("dct")
        state = binding.clone_state()
        assert state.derived is not None
        clone = pickle.loads(pickle.dumps(state))
        assert clone.derived is None
        assert clone == state
        other = fresh_binding("dct")
        other.restore_state(clone)
        assert other.total_cost() == pytest.approx(binding.total_cost())
