"""Unit tests for iterative improvement, polish and annealing."""

import pytest

from repro.bench import elliptic_wave_filter, hal_diffeq
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core import (AnnealConfig, ImproveConfig, MoveSet, anneal,
                        improve, initial_allocation, polish)
from repro.core.improve import ImproveStats
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


def fresh_binding(length=19, extra_regs=1):
    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, SPEC, length)
    return initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + extra_regs))


class TestImprove:
    def test_never_worse_than_initial(self):
        binding = fresh_binding()
        initial = binding.cost().total
        stats = improve(binding, ImproveConfig(max_trials=4,
                                               moves_per_trial=300, seed=1))
        assert stats.final_cost.total <= initial
        assert check_binding(binding) == []

    def test_stats_populated(self):
        binding = fresh_binding()
        stats = improve(binding, ImproveConfig(max_trials=3,
                                               moves_per_trial=150, seed=2))
        assert stats.trials_run >= 1
        assert stats.moves_attempted >= stats.moves_applied
        assert stats.moves_applied >= stats.moves_accepted
        assert len(stats.cost_trace) == stats.trials_run
        assert "improve:" in stats.summary()

    def test_stops_after_idle_trials(self):
        binding = fresh_binding()
        stats = improve(binding, ImproveConfig(
            max_trials=50, moves_per_trial=40, uphill_per_trial=0,
            idle_trials_stop=2, polish_trials=False, seed=3))
        assert stats.trials_run < 50

    def test_no_moves_enabled_rejected(self):
        binding = fresh_binding()
        with pytest.raises(ValueError, match="no moves"):
            improve(binding, ImproveConfig(
                move_set=MoveSet(weights={k: 0.0 for k in
                                          MoveSet.DEFAULT_WEIGHTS})))

    def test_deterministic_for_fixed_seed(self):
        results = []
        for _ in range(2):
            binding = fresh_binding()
            improve(binding, ImproveConfig(max_trials=3,
                                           moves_per_trial=200, seed=42))
            results.append(binding.cost().total)
        assert results[0] == results[1]

    def test_traditional_move_set_keeps_values_monolithic(self):
        binding = fresh_binding()
        improve(binding, ImproveConfig(max_trials=3, moves_per_trial=300,
                                       move_set=MoveSet.traditional(),
                                       seed=4))
        assert not binding.pt_impl
        assert all(len(r) == 1 for r in binding.placements.values())


class TestPolish:
    def test_polish_monotone(self):
        binding = fresh_binding()
        start = binding.cost().total
        final = polish(binding)
        assert final <= start
        assert binding.cost().total == pytest.approx(final)
        assert check_binding(binding) == []

    def test_polish_idempotent(self):
        binding = fresh_binding()
        first = polish(binding)
        second = polish(binding)
        assert second == pytest.approx(first)

    def test_polish_respects_traditional_move_set(self):
        binding = fresh_binding()
        polish(binding, MoveSet.traditional())
        assert not binding.pt_impl


class TestStatsCompat:
    def test_from_dict_accepts_legacy_payload(self):
        """Regression: stats JSON written before the extended telemetry
        landed (no per_move/trial_seconds/best_trace/seed/...) must load
        with the dataclass defaults instead of raising KeyError."""
        legacy = {
            "trials_run": 2, "moves_attempted": 10, "moves_applied": 8,
            "moves_accepted": 5, "uphill_accepted": 1,
            "initial_cost": None, "final_cost": None,
            "per_move_accepts": {"F1": 5}, "cost_trace": [3.0, 2.5],
        }
        stats = ImproveStats.from_dict(legacy)
        assert stats.trials_run == 2
        assert stats.per_move_accepts == {"F1": 5}
        assert stats.per_move == {}
        assert stats.trial_seconds == []
        assert stats.uphill_used == []
        assert stats.best_trace == []
        assert stats.seconds == 0.0
        assert stats.seed is None
        assert stats.phase_ns == {}
        # and the loaded object round-trips through the modern serializer
        again = ImproveStats.from_json(stats.to_json())
        assert again.to_dict() == stats.to_dict()


class TestAnneal:
    def test_anneal_runs_and_stays_legal(self):
        binding = fresh_binding()
        initial = binding.cost().total
        stats = anneal(binding, AnnealConfig(temperature_levels=5,
                                             moves_per_level=150, seed=5))
        assert stats.final_cost.total <= initial
        assert check_binding(binding) == []

    def test_no_moves_enabled_rejected(self):
        """Regression: anneal() must reject an empty enabled-move set the
        same way improve() does, not spin the full budget doing nothing."""
        binding = fresh_binding()
        with pytest.raises(ValueError, match="no moves"):
            anneal(binding, AnnealConfig(
                move_set=MoveSet(weights={k: 0.0 for k in
                                          MoveSet.DEFAULT_WEIGHTS})))

    def test_telemetry_parity_with_improve(self):
        """Regression: annealing runs once reported seconds=0.0, no seed,
        and empty per-move counters / traces."""
        binding = fresh_binding()
        stats = anneal(binding, AnnealConfig(temperature_levels=4,
                                             moves_per_level=120, seed=9))
        assert stats.seed == 9
        assert stats.seconds > 0.0
        assert stats.per_move
        assert sum(c.attempts for c in stats.per_move.values()) \
            == stats.moves_attempted
        assert sum(c.accepts for c in stats.per_move.values()) \
            == stats.moves_accepted
        assert stats.best_trace
        assert stats.best_trace[0] == (0, stats.initial_cost.total)
        assert len(stats.trial_seconds) == stats.trials_run
        assert len(stats.uphill_used) == stats.trials_run

    def test_improvement_beats_annealing_at_equal_budget(self):
        """The paper's Sec. 4 claim, at a modest equal move budget."""
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 7)
        fus = SPEC.make_fus(schedule.min_fus())
        regs = make_registers(schedule.min_registers() + 1)

        imp = initial_allocation(schedule, fus, regs)
        improve(imp, ImproveConfig(max_trials=6, moves_per_trial=400,
                                   seed=6))
        ann = initial_allocation(schedule, fus, regs)
        anneal(ann, AnnealConfig(temperature_levels=8, moves_per_level=300,
                                 seed=6))
        assert imp.cost().total <= ann.cost().total + 1e-9
