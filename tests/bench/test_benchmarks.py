"""Invariant tests for the benchmark CDFGs (the paper's evaluation inputs)."""

import math

import pytest

from repro.bench import (EWF_COEFFICIENTS, ar_lattice, dct_invariants,
                         discrete_cosine_transform, elliptic_wave_filter,
                         ewf_invariants, figure1_cdfg, figure3_fragment,
                         figure4_fragment, fir_filter, hal_diffeq,
                         random_cdfg)
from repro.cdfg.interp import evaluate_once, run_iterations
from repro.cdfg.validate import validate_cdfg
from repro.datapath.units import HardwareSpec
from repro.sched.asap import asap_length

SPEC = HardwareSpec.non_pipelined()


class TestEWF:
    def test_pinned_invariants(self):
        graph = elliptic_wave_filter()
        inv = ewf_invariants()
        counts = graph.op_count_by_kind()
        assert len(graph) == inv["ops"]
        assert counts["add"] == inv["adds"]
        assert counts["mul"] == inv["muls"]
        assert len(graph.loop_values) == inv["loop_values"]
        assert graph.inputs == inv["inputs"]
        assert graph.outputs == inv["outputs"]

    def test_critical_path_is_17(self):
        graph = elliptic_wave_filter()
        assert asap_length(graph, SPEC) == 17
        assert asap_length(graph, HardwareSpec.pipelined()) == 17

    def test_all_multiplications_have_constant_coefficient(self):
        from repro.cdfg.nodes import Const
        graph = elliptic_wave_filter()
        for op in graph.ops.values():
            if op.kind == "mul":
                assert any(isinstance(o, Const) for o in op.operands)

    def test_coefficient_count_enforced(self):
        with pytest.raises(ValueError, match="8 adaptor"):
            elliptic_wave_filter(coefficients=(0.1, 0.2))

    def test_filter_is_stable(self):
        """A constant input drives the filter to a bounded steady state
        (the negative adaptor coefficients make the loops contractive)."""
        graph = elliptic_wave_filter()
        trace = run_iterations(graph, {"inp": [1.0] * 60},
                               {sv: 0.0 for sv in graph.loop_values}, 60)
        assert all(abs(t["outp"]) < 10.0 for t in trace)
        assert abs(trace[-1]["outp"] - trace[-2]["outp"]) < 1e-3

    def test_deterministic_construction(self):
        a = elliptic_wave_filter()
        b = elliptic_wave_filter()
        assert sorted(a.ops) == sorted(b.ops)


class TestDCT:
    def test_pinned_invariants(self):
        graph = discrete_cosine_transform()
        inv = dct_invariants()
        counts = graph.op_count_by_kind()
        assert len(graph) == inv["ops"]
        assert counts["add"] == inv["adds"]
        assert counts["sub"] == inv["subs"]
        assert counts["mul"] == inv["muls"]
        assert len(graph.inputs) == inv["inputs"]
        assert len(graph.outputs) == inv["outputs"]

    def test_acyclic(self):
        graph = discrete_cosine_transform()
        assert not graph.cyclic
        assert not graph.loop_values

    def test_linearity(self):
        """The DCT is linear: T(a x + b y) == a T(x) + b T(y)."""
        graph = discrete_cosine_transform()
        x = {f"x{i}": float(i + 1) for i in range(8)}
        y = {f"x{i}": float((i * 3) % 5 - 2) for i in range(8)}
        combo = {k: 2.0 * x[k] - 0.5 * y[k] for k in x}
        tx = evaluate_once(graph, x)
        ty = evaluate_once(graph, y)
        tc = evaluate_once(graph, combo)
        for k in range(8):
            out = f"X{k}"
            assert tc[out] == pytest.approx(2.0 * tx[out] - 0.5 * ty[out])

    def test_even_half_is_exact_dct(self):
        """X0/X2/X4/X6 match the analytic 8-point DCT-II (scaled)."""
        graph = discrete_cosine_transform()
        xs = [1.0, 2.0, -1.0, 0.5, 3.0, -2.0, 0.0, 1.5]
        out = evaluate_once(graph, {f"x{i}": xs[i] for i in range(8)})
        for k in (0, 2, 4, 6):
            expected = sum(
                xs[n] * math.cos((2 * n + 1) * k * math.pi / 16.0)
                for n in range(8))
            if k == 0:
                expected *= math.cos(math.pi / 4.0)  # fast-DCT X0 scaling
            assert out[f"X{k}"] == pytest.approx(expected, abs=1e-9)

    def test_constant_coefficients_only(self):
        from repro.cdfg.nodes import Const
        graph = discrete_cosine_transform()
        for op in graph.ops.values():
            if op.kind == "mul":
                assert any(isinstance(o, Const) for o in op.operands)


class TestExtras:
    def test_diffeq_shape(self):
        graph = hal_diffeq()
        counts = graph.op_count_by_kind()
        assert counts == {"mul": 6, "add": 2, "sub": 2}
        assert set(graph.loop_values) == {"x", "y", "u"}

    def test_fir_shape(self):
        graph = fir_filter(taps=8)
        counts = graph.op_count_by_kind()
        assert counts["mul"] == 8
        assert counts["add"] == 8
        assert len(graph.loop_values) == 7

    def test_fir_validates_other_sizes(self):
        for taps in (2, 4, 12):
            validate_cdfg(fir_filter(taps=taps))

    def test_fir_rejects_tiny(self):
        with pytest.raises(ValueError):
            fir_filter(taps=1)

    def test_ar_lattice_shape(self):
        graph = ar_lattice()
        counts = graph.op_count_by_kind()
        assert counts["mul"] == 16
        assert counts["add"] == 12

    def test_figure_fragments_validate(self):
        for graph in (figure1_cdfg(), figure3_fragment(),
                      figure4_fragment()):
            validate_cdfg(graph)


class TestRandomCDFG:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_acyclic(self, seed):
        validate_cdfg(random_cdfg(18, seed=seed))

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_cyclic(self, seed):
        graph = random_cdfg(24, seed=seed, loop_fraction=0.15)
        validate_cdfg(graph)
        assert graph.cyclic and graph.loop_values

    def test_reproducible(self):
        a = random_cdfg(20, seed=5)
        b = random_cdfg(20, seed=5)
        assert sorted(a.ops) == sorted(b.ops)
        assert all(str(a.ops[o]) == str(b.ops[o]) for o in a.ops)

    def test_op_count_respected(self):
        assert len(random_cdfg(33, seed=1)) == 33

    def test_input_guards(self):
        with pytest.raises(ValueError):
            random_cdfg(1)
        with pytest.raises(ValueError):
            random_cdfg(5, n_inputs=0)
        with pytest.raises(ValueError, match="need at least"):
            random_cdfg(4, n_inputs=4, loop_fraction=0.5)

    @pytest.mark.parametrize("seed", range(4))
    def test_schedulable(self, seed):
        graph = random_cdfg(20, seed=seed, loop_fraction=0.1)
        from repro.sched.explore import schedule_graph
        schedule_graph(graph, SPEC).validate()
