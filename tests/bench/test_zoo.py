"""Scenario zoo: determinism, validity, goldens, CLI, and integrations."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.bench.__main__ import _parse_scenario, main as bench_main
from repro.bench.runner import (check_rows, load_golden, render_table,
                                results_document, run_scenario,
                                write_results)
from repro.bench.zoo import FAMILIES, Scenario, default_suite, \
    scenario_for_fuzz
from repro.cdfg.validate import validate_cdfg
from repro.core import ImproveConfig
from repro.io.json_io import cdfg_to_dict

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "..",
                      "results", "bench_zoo.json")

#: one small parameter point per family, for fast golden-style checks
SMALL = {
    "fft": {"points": 4},
    "fir": {"taps": 4},
    "iir": {"sections": 1},
    "lattice": {"order": 2},
    "loopy": {"chains": 2, "depth": 2},
    "branchy": {"diamonds": 2},
    "multiprec": {"words": 2},
    "longlife": {"width": 2, "stretch": 3},
    "fanout": {"readers": 4},
}

TINY = ImproveConfig(max_trials=1, moves_per_trial=60)


def _encode(graph) -> str:
    return json.dumps(cdfg_to_dict(graph), sort_keys=True)


# ------------------------------------------------------------ the generators

@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_builds_and_validates_at_small_size(family):
    scenario = Scenario.make(family, seed=3, **SMALL[family])
    graph = scenario.build()
    validate_cdfg(graph)
    assert len(graph) >= 5
    # every op kind must be executable on the family's hardware spec
    spec = scenario.spec()
    for op in graph.ops.values():
        assert spec.type_for_kind(op.kind) is not None


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_family_deterministic_for_equal_triples(family):
    first = Scenario.make(family, seed=11).build()
    second = Scenario.make(family, seed=11).build()
    assert _encode(first) == _encode(second)


def test_seed_varies_coefficients_but_not_structure():
    base = Scenario.make("fir", seed=0).build()
    other = Scenario.make("fir", seed=1).build()
    assert _encode(base) != _encode(other)
    assert len(base) == len(other)
    assert sorted(base.ops) == sorted(other.ops)


def test_lattice_default_is_the_fifth_order_elliptic_target():
    scenario = Scenario.make("lattice")
    assert scenario.params_dict == {"order": 5}
    graph = scenario.build()
    # 5 loop-carried lattice states (the z^-1 registers of the filter)
    states = [v for v in graph.values.values() if v.loop_carried]
    assert len(states) == 5


def test_scenario_names_round_trip_through_the_cli_parser():
    for scenario in default_suite(seed=2):
        assert _parse_scenario(scenario.name) == scenario


def test_unknown_family_and_parameter_are_rejected():
    with pytest.raises(ValueError):
        Scenario.make("nonesuch")
    with pytest.raises(ValueError):
        Scenario.make("fft", bogus=1)


def test_scenario_for_fuzz_clamps_sizes():
    tiny = scenario_for_fuzz("lattice", 1, seed=0)
    assert tiny.params_dict["order"] >= 2
    big = scenario_for_fuzz("fft", 10_000, seed=0)
    assert big.params_dict["points"] == 16
    tiny.build()
    big.build()


# ------------------------------------------------------- runner and goldens

@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_small_scenario_pipeline_is_deterministic(family):
    scenario = Scenario.make(family, seed=5, **SMALL[family])
    first = run_scenario(scenario, budget=TINY, restarts=1)
    second = run_scenario(scenario, budget=TINY, restarts=1)
    assert first.cost_total == second.cost_total
    assert first.mux_count == second.mux_count
    assert first.checker_violations == 0
    assert first.cost_total > 0
    assert first.moves > 0


def test_committed_golden_spot_check():
    """The two cheapest committed scenarios reproduce exactly."""
    golden = load_golden(GOLDEN)
    for name in ("fanout-readers12-s0", "loopy-chains4-depth3-s0"):
        want = golden["rows"][name]
        row = run_scenario(_parse_scenario(name))
        assert row.mux_count == want["mux_count"]
        assert abs(row.cost_total - want["cost_total"]) < 1e-9
        assert row.ops == want["ops"]
        assert row.csteps == want["csteps"]


def test_check_rows_flags_drift_and_missing():
    scenario = Scenario.make("loopy", seed=5, **SMALL["loopy"])
    row = run_scenario(scenario, budget=TINY, restarts=1)
    document = results_document([row], "fast", 1, "list")
    assert check_rows([row], document) == []

    tampered = json.loads(json.dumps(document))
    tampered["rows"][row.scenario]["mux_count"] += 1
    tampered["rows"][row.scenario]["cost_total"] += 0.5
    problems = check_rows([row], tampered)
    assert any("mux_count" in p for p in problems)
    assert any("cost_total" in p for p in problems)

    assert any("missing" in p for p in check_rows([], document))
    assert any("not in golden" in p
               for p in check_rows([row], {"rows": {}}))


def test_render_table_has_all_scenarios():
    scenario = Scenario.make("fanout", seed=5, **SMALL["fanout"])
    row = run_scenario(scenario, budget=TINY, restarts=1)
    table = render_table([row])
    assert row.scenario in table
    assert "moves/s" in table


# -------------------------------------------------------------------- the CLI

def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    for family in FAMILIES:
        assert family in out


def test_cli_sweep_writes_json(tmp_path, capsys):
    path = tmp_path / "sweep.json"
    assert bench_main(["--scenarios", "loopy-chains2-depth2-s1",
                       "--restarts", "1", "--json", str(path)]) == 0
    report = json.loads(path.read_text())
    assert list(report["rows"]) == ["loopy-chains2-depth2-s1"]
    assert report["rows"]["loopy-chains2-depth2-s1"]["cost_total"] > 0
    assert "loopy-chains2-depth2-s1" in capsys.readouterr().out


def test_cli_check_passes_and_fails(tmp_path, capsys):
    scenario = Scenario.make("fanout", seed=4, **SMALL["fanout"])
    row = run_scenario(scenario, budget=ImproveConfig(
        max_trials=2, moves_per_trial=300), restarts=2)
    golden_path = tmp_path / "golden.json"
    write_results(results_document([row], "fast", 2, "list"),
                  str(golden_path))
    assert bench_main(["--check", "--golden", str(golden_path)]) == 0
    capsys.readouterr()

    tampered = json.loads(golden_path.read_text())
    tampered["rows"][row.scenario]["cost_total"] += 1.0
    golden_path.write_text(json.dumps(tampered))
    assert bench_main(["--check", "--golden", str(golden_path)]) == 1
    assert "cost_total" in capsys.readouterr().err

    # budget metadata mismatch is a usage error, not a quality failure
    assert bench_main(["--check", "--golden", str(golden_path),
                       "--restarts", "1"]) == 2


def test_cli_rejects_unknown_family(capsys):
    with pytest.raises(SystemExit):
        bench_main(["--families", "nonesuch"])


# ------------------------------------------------------------ fuzz integration

def test_fuzzcase_from_dict_accepts_legacy_reproducers():
    from repro.verify.fuzz import FuzzCase

    legacy = {
        "index": 1, "seed": 2, "n_ops": 8, "n_inputs": 2,
        "const_fraction": 0.1, "loop_fraction": 0.0, "scheduler": "list",
        "length_slack": 1, "extra_registers": 1, "restarts": 1,
        "max_trials": 2, "moves_per_trial": 60, "uphill": 2,
        "iterations": 2,
    }  # written before the `family` field existed
    case = FuzzCase.from_dict(legacy)
    assert case.family == ""
    assert FuzzCase.from_dict(case.to_dict()) == case


def test_sample_case_draws_zoo_families():
    from repro.rng import SeedStream
    from repro.verify.fuzz import FuzzConfig, sample_case

    stream = SeedStream(3)
    config = FuzzConfig(zoo_fraction=1.0)
    families = {sample_case(stream, index, config).family
                for index in range(12)}
    assert families <= set(FAMILIES)
    assert len(families) >= 3

    none_config = FuzzConfig(zoo_fraction=0.0)
    assert all(sample_case(stream, index, none_config).family == ""
               for index in range(6))


def test_build_problem_zoo_case_uses_family_spec():
    from repro.rng import SeedStream
    from repro.verify.fuzz import FuzzConfig, build_problem, sample_case

    case = sample_case(SeedStream(3), 0, FuzzConfig(zoo_fraction=0.0))
    zoo_case = dataclasses.replace(case, family="multiprec", n_ops=14)
    graph, schedule = build_problem(zoo_case)
    kinds = {op.kind for op in graph.ops.values()}
    assert {"and", "xor"} <= kinds
    assert "alu" in schedule.spec.fu_types


def test_run_case_zoo_family_end_to_end():
    from repro.verify.fuzz import FuzzCase, run_case

    case = FuzzCase(
        index=0, seed=9, n_ops=14, n_inputs=1, const_fraction=0.0,
        loop_fraction=0.0, scheduler="list", length_slack=1,
        extra_registers=1, restarts=1, max_trials=1, moves_per_trial=40,
        uphill=2, iterations=2, family="lattice")
    assert run_case(case) is None


# --------------------------------------------------------- loadgen integration

def test_zoo_requests_embed_distinct_graphs():
    from repro.service.loadgen import zoo_requests

    pool = zoo_requests(8, seed_base=1)
    assert len(pool) == 8
    for body in pool:
        assert body["cdfg"]["type"] == "cdfg"
        assert body["spec"]["fu_types"]
    # deterministic pool, with deliberate verbatim repeats for the cache
    assert pool == zoo_requests(8, seed_base=1)
    encoded = [json.dumps(body, sort_keys=True) for body in pool]
    assert len(set(encoded)) < len(encoded)


def test_zoo_requests_rejects_unknown_family():
    from repro.service.loadgen import zoo_requests

    with pytest.raises(ValueError):
        zoo_requests(2, families=["nonesuch"])
