"""Tests for inputs arriving mid-schedule (arrival_step > 0).

The EWF/DCT benchmarks all read their inputs at step 0, so this corner of
the timing model (input-port writes at the ``arrival-1`` boundary, both in
acyclic and cyclic schedules) gets dedicated coverage here.
"""

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.cdfg.validate import validate_cdfg
from repro.datapath.simulate import simulate_binding, verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.schedule import Schedule
from repro.core.initial import initial_allocation
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()


def staggered_acyclic():
    """x0 arrives at step 0, x1 only at step 2."""
    b = CDFGBuilder("stag")
    b.input("x0", arrival_step=0)
    b.input("x1", arrival_step=2)
    b.add("a1", "x0", 1.0, "t")
    b.add("a2", "t", "t", "u")
    b.add("a3", "u", "x1", "y")
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def staggered_cyclic():
    """Loop body whose input is sampled at step 1 of each iteration."""
    b = CDFGBuilder("stagloop", cyclic=True)
    b.input("x", arrival_step=1)
    b.loop_value("sv")
    b.add("a1", "sv", 0.5, "t")          # step 0: uses state only
    b.add("a2", "t", "x", "y")           # step 1: fresh input arrives
    b.add("a3", "y", 0.0, "sv")          # step 2: state update
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


class TestAcyclicArrival:
    def allocate(self):
        graph = staggered_acyclic()
        schedule = Schedule(graph, SPEC, 3, {"a1": 0, "a2": 1, "a3": 2})
        return initial_allocation(schedule, SPEC.make_fus({"adder": 1,
                                                           "mult": 0}),
                                  make_registers(3))

    def test_lifetimes(self):
        binding = self.allocate()
        assert binding.interval("x1").steps == (2,)
        assert check_binding(binding) == []

    def test_simulation(self):
        binding = self.allocate()
        trace = simulate_binding(binding, {"x0": [3.0], "x1": [10.0]},
                                 {}, 1)
        # y = ((3+1)*2) + 10
        assert trace.outputs[0]["y"] == pytest.approx(18.0)

    def test_verify(self):
        verify_binding(self.allocate())


class TestCyclicArrival:
    def allocate(self):
        graph = staggered_cyclic()
        schedule = Schedule(graph, SPEC, 3, {"a1": 0, "a2": 1, "a3": 2})
        return initial_allocation(schedule, SPEC.make_fus({"adder": 1,
                                                           "mult": 0}),
                                  make_registers(3))

    def test_input_written_same_iteration(self):
        from repro.datapath.netlist import build_netlist
        binding = self.allocate()
        netlist = build_netlist(binding)
        writes = [w for w in netlist.writes if w.source[0] == "in_port"]
        assert writes and all(w.step == 0 for w in writes)
        assert all(w.source[2] is False for w in writes)  # same iteration

    def test_multi_iteration_simulation(self):
        binding = self.allocate()
        verify_binding(binding, iterations=5)

    def test_explicit_trace(self):
        binding = self.allocate()
        trace = simulate_binding(binding, {"x": [1.0, 2.0, 3.0]},
                                 {"sv": 4.0}, 3)
        # iteration 0: t = 4 + .5 = 4.5; y = 5.5; sv' = 5.5
        assert trace.outputs[0]["y"] == pytest.approx(5.5)
        # iteration 1: t = 6.0; y = 8.0
        assert trace.outputs[1]["y"] == pytest.approx(8.0)
