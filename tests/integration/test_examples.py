"""Smoke tests: every example script must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


@pytest.mark.parametrize("name,args,expect", [
    ("quickstart.py", (), "cycle-accurate simulation matches"),
    ("figure_mechanics.py", (), "pass-through saves 1"),
    ("moves_tour.py", (), "every move rolled back"),
    ("custom_kernel.py", (), "verified over 8 samples"),
    ("dct_pipeline.py", ("--csteps", "10"), "wrote"),
    ("full_backend.py", (), "reloaded binding re-verified"),
    ("parallel_restarts.py", ("--fast", "--workers", "2"),
     "serial re-run bit-identical: yes"),
])
def test_example_runs(name, args, expect, tmp_path):
    proc = run_example(name, *args)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


def test_design_space_example_fast():
    proc = run_example("ewf_design_space.py", "--fast",
                       "--extra-registers", "0", timeout=420)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "extended model strictly better" in proc.stdout
