"""Integration tests: the full pipeline on the paper's benchmarks."""

import pytest

from repro.bench import (discrete_cosine_transform, elliptic_wave_filter,
                         hal_diffeq)
from repro.datapath.muxmerge import merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.rtl import netlist_to_verilog
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import (ImproveConfig, SalsaAllocator,
                        TraditionalAllocator, salsa_from_traditional)

FAST = ImproveConfig(max_trials=5, moves_per_trial=300)


@pytest.mark.parametrize("length,pipelined", [
    (17, False), (19, False), (21, False), (17, True), (19, True),
])
def test_ewf_full_pipeline(length, pipelined):
    """Schedule, allocate (both models), verify, build netlist and RTL for
    every Table 2 schedule point."""
    graph = elliptic_wave_filter()
    spec = HardwareSpec.pipelined() if pipelined else \
        HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, length)

    trad = TraditionalAllocator(seed=3, restarts=1, config=FAST).allocate(
        graph, schedule=schedule)
    salsa = salsa_from_traditional(trad, config=FAST, seed=5)

    assert salsa.cost.total <= trad.cost.total + 1e-9
    verify_binding(salsa.binding, iterations=4)
    verify_binding(trad.binding, iterations=4)

    netlist = build_netlist(salsa.binding)
    assert netlist.mux_eq21() == salsa.mux_count
    report = merge_muxes(netlist)
    assert report.after_instances <= report.before_instances
    rtl = netlist_to_verilog(netlist)
    assert "endmodule" in rtl


def test_dct_full_pipeline():
    graph = discrete_cosine_transform()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 10)
    result = SalsaAllocator(seed=1, restarts=1, config=FAST).allocate(
        graph, schedule=schedule)
    verify_binding(result.binding)
    netlist = build_netlist(result.binding)
    assert len(netlist.outs) == 8


def test_register_budget_sweep_monotone_enough():
    """More registers must never make the best-found allocation much
    worse (they can be left unused)."""
    graph = hal_diffeq()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 7)
    base = None
    for extra in (0, 1, 2):
        result = SalsaAllocator(seed=4, restarts=2, config=FAST).allocate(
            graph, schedule=schedule,
            registers=schedule.min_registers() + extra)
        verify_binding(result.binding, iterations=3)
        if base is None:
            base = result.mux_count
        assert result.mux_count <= base + 2


def test_multiple_seeds_all_legal_and_correct():
    graph = elliptic_wave_filter()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 19)
    muxes = []
    for seed in range(3):
        result = SalsaAllocator(seed=seed, restarts=1,
                                config=FAST).allocate(graph,
                                                      schedule=schedule)
        verify_binding(result.binding, iterations=3, seed=seed)
        muxes.append(result.mux_count)
    # randomized search: results vary but stay in a sane band
    assert max(muxes) - min(muxes) <= 12
