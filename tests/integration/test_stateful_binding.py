"""Stateful property test: the binding state machine under random moves.

A hypothesis ``RuleBasedStateMachine`` drives a real EWF binding through
arbitrary interleavings of moves, rollbacks, snapshots and restores, and
checks the system's core invariants after every rule:

* the binding always passes the full legality checker;
* the incrementally-maintained ledger always matches a from-scratch
  re-derivation (via the checker);
* rollback restores the exact cost;
* snapshot/restore round-trips exactly.
"""

import random

import pytest
from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)
from hypothesis import strategies as st

from repro.bench import hal_diffeq
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation
from repro.core.moves import MoveSet, rollback
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()
MOVES = {name: fn for name, fn, _w in MoveSet().enabled_moves()}


class BindingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 8)
        self.binding = initial_allocation(
            schedule, SPEC.make_fus(schedule.min_fus()),
            make_registers(schedule.min_registers() + 2))
        self.rng = random.Random(0)
        self.snapshot = None
        self.snapshot_cost = None
        self.pending = None  # (undos, cost_before)

    @rule(name=st.sampled_from(sorted(MOVES)), seed=st.integers(0, 9999))
    def apply_move(self, name, seed):
        if self.pending is not None:
            return
        self.rng.seed(seed)
        before = self.binding.cost().total
        undos = MOVES[name](self.binding, self.rng)
        if undos is not None:
            self.pending = (undos, before)

    @precondition(lambda self: self.pending is not None)
    @rule(keep=st.booleans())
    def resolve_move(self, keep):
        undos, before = self.pending
        self.pending = None
        if keep:
            self.binding.cost()
        else:
            rollback(undos)
            self.binding.flush()
            assert self.binding.cost().total == pytest.approx(before)

    @precondition(lambda self: self.pending is None)
    @rule()
    def take_snapshot(self):
        self.snapshot = self.binding.clone_state()
        self.snapshot_cost = self.binding.cost().total

    @precondition(lambda self: self.snapshot is not None
                  and self.pending is None)
    @rule()
    def restore_snapshot(self):
        self.binding.restore_state(self.snapshot)
        assert self.binding.cost().total == pytest.approx(
            self.snapshot_cost)

    @invariant()
    def always_legal(self):
        if self.pending is not None:
            return  # mid-move: resolve first
        problems = check_binding(self.binding)
        assert problems == [], problems[:3]


BindingMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
TestBindingMachine = BindingMachine.TestCase
