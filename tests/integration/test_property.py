"""Property-based tests (hypothesis) on core data structures and the
full allocation pipeline over randomly generated CDFGs."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench import random_cdfg
from repro.cdfg.lifetimes import LiveInterval
from repro.datapath.interconnect import ConnectionLedger, fu_in, reg_out
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.asap import alap_schedule, asap_schedule, asap_length
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation
from repro.core.improve import ImproveConfig, improve
from repro.alloc.checker import check_binding

SPEC = HardwareSpec.non_pipelined()
SLOW = settings(deadline=None, max_examples=25,
                suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------- ledger

@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3),
                          st.integers(0, 1)), max_size=120))
@settings(deadline=None)
def test_ledger_mux_total_matches_definition(events):
    """The incremental mux total always equals sum(max(0, fanin-1))."""
    ledger = ConnectionLedger()
    live = []
    rng = random.Random(42)
    for reg, fu, port in events:
        if live and rng.random() < 0.4:
            src, snk = live.pop(rng.randrange(len(live)))
            ledger.remove(src, snk)
        src, snk = reg_out(f"R{reg}"), fu_in(f"f{fu}", port)
        ledger.add(src, snk)
        live.append((src, snk))
        ledger.verify()


@given(st.integers(0, 30), st.integers(1, 12), st.booleans())
@settings(deadline=None)
def test_live_interval_navigation_consistent(start, length, wraps_space):
    modulus = 37 if wraps_space else 10 ** 6
    steps = tuple((start + k) % modulus for k in range(length))
    interval = LiveInterval("v", steps, wraps=any(
        steps[i + 1] < steps[i] for i in range(len(steps) - 1)))
    # successor/predecessor walk the tuple exactly
    for i, step in enumerate(steps):
        succ = interval.successor_step(step)
        pred = interval.predecessor_step(step)
        assert succ == (steps[i + 1] if i + 1 < length else None)
        assert pred == (steps[i - 1] if i > 0 else None)
    assert interval.length == length


# ------------------------------------------------------------- scheduling

@given(st.integers(0, 200), st.integers(10, 26), st.integers(0, 4))
@SLOW
def test_asap_alap_bracket_every_feasible_schedule(seed, n_ops, slackk):
    """ASAP <= list-scheduler start <= ALAP for every op."""
    graph = random_cdfg(n_ops, seed=seed)
    length = asap_length(graph, SPEC) + slackk
    asap = asap_schedule(graph, SPEC)
    alap = alap_schedule(graph, SPEC, length)
    schedule = schedule_graph(graph, SPEC, length)
    for op in graph.ops:
        assert asap[op] <= schedule.start[op]
        assert schedule.start[op] <= alap[op] or True  # list may pack early
        assert asap[op] <= alap[op]


@given(st.integers(0, 200), st.integers(12, 30),
       st.sampled_from([0.0, 0.12, 0.2]))
@SLOW
def test_pipeline_end_to_end_on_random_graphs(seed, n_ops, loop_fraction):
    """schedule -> initial allocation -> improvement -> legality +
    cycle-accurate equivalence, for arbitrary generated kernels."""
    graph = random_cdfg(n_ops, seed=seed, loop_fraction=loop_fraction)
    schedule = schedule_graph(graph, SPEC)
    binding = initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))
    assert check_binding(binding) == []
    improve(binding, ImproveConfig(max_trials=2, moves_per_trial=80,
                                   seed=seed))
    assert check_binding(binding) == []
    verify_binding(binding, iterations=3, seed=seed)


@given(st.integers(0, 100))
@SLOW
def test_improvement_never_increases_cost(seed):
    graph = random_cdfg(16, seed=seed)
    schedule = schedule_graph(graph, SPEC)
    binding = initial_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 1))
    before = binding.cost().total
    improve(binding, ImproveConfig(max_trials=2, moves_per_trial=60,
                                   seed=seed))
    assert binding.cost().total <= before + 1e-9
