"""Unit tests for ASAP/ALAP scheduling and mobility."""

import pytest

from repro.errors import ScheduleError
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.asap import (alap_schedule, asap_length, asap_schedule,
                              mobility)


def toy():
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


def loop():
    b = CDFGBuilder("loop", cyclic=True)
    b.input("inp")
    b.op("a1", "add", ["inp", "sv"], "t")
    b.op("a2", "add", ["t", "t"], "sv")
    b.loop_value("sv").output("t")
    return b.build()


SPEC = HardwareSpec.non_pipelined()


class TestAsap:
    def test_chain_timing(self):
        start = asap_schedule(toy(), SPEC)
        assert start == {"a1": 0, "m1": 1, "a2": 3}

    def test_length_is_critical_path(self):
        assert asap_length(toy(), SPEC) == 4

    def test_anti_dependence_pushes_producer(self):
        start = asap_schedule(loop(), SPEC)
        # a2 produces loop value read by a1 -> a2 must start >= a1
        assert start["a2"] >= start["a1"]

    def test_pipelined_same_critical_path_for_single_chain(self):
        assert asap_length(toy(), HardwareSpec.pipelined()) == 4

    def test_ewf_critical_path_17(self):
        from repro.bench import elliptic_wave_filter
        assert asap_length(elliptic_wave_filter(), SPEC) == 17

    def test_dct_critical_path(self):
        from repro.bench import discrete_cosine_transform
        assert asap_length(discrete_cosine_transform(), SPEC) == 6


class TestAlap:
    def test_sink_at_end(self):
        alap = alap_schedule(toy(), SPEC, 6)
        assert alap["a2"] == 5
        assert alap["m1"] == 3
        assert alap["a1"] == 2

    def test_too_short_raises(self):
        with pytest.raises(ScheduleError, match="below critical path"):
            alap_schedule(toy(), SPEC, 3)

    def test_alap_respects_anti_dependence(self):
        alap = alap_schedule(loop(), SPEC, 4)
        assert alap["a1"] <= alap["a2"]


class TestMobility:
    def test_critical_ops_have_zero_slack(self):
        slack = mobility(toy(), SPEC, 4)
        assert slack == {"a1": 0, "m1": 0, "a2": 0}

    def test_slack_grows_with_length(self):
        slack = mobility(toy(), SPEC, 7)
        assert all(s == 3 for s in slack.values())

    def test_offpath_op_has_slack(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.op("m", "mul", ["x", "x"], "p")   # 2 steps, critical
        b.op("a", "add", ["x", "x"], "q")   # 1 step, slack 1
        b.op("j", "add", ["p", "q"], "r")
        b.output("r")
        g = b.build()
        slack = mobility(g, SPEC, 3)
        assert slack["m"] == 0 and slack["a"] == 1
