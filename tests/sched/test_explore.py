"""Unit tests for latency/resource exploration."""

import pytest

from repro.errors import ScheduleError
from repro.bench import (discrete_cosine_transform, elliptic_wave_filter,
                         hal_diffeq)
from repro.datapath.units import HardwareSpec
from repro.sched.explore import (lower_bounds, minimal_fu_counts,
                                 schedule_graph)

SPEC = HardwareSpec.non_pipelined()


class TestLowerBounds:
    def test_utilization_bound(self):
        g = elliptic_wave_filter()
        lb = lower_bounds(g, SPEC, 17)
        # 26 adds / 17 steps -> 2 adders; 8 muls * 2 steps / 17 -> 1 mult
        assert lb["adder"] == 2
        assert lb["mult"] == 1

    def test_pipelined_occupancy_is_one(self):
        g = elliptic_wave_filter()
        lb = lower_bounds(g, HardwareSpec.pipelined(), 17)
        assert lb["pmult"] == 1


class TestMinimalCounts:
    def test_ewf_19_matches_classic(self):
        g = elliptic_wave_filter()
        assert minimal_fu_counts(g, SPEC, 19) == {"adder": 2, "mult": 2}

    def test_ewf_21_single_multiplier(self):
        g = elliptic_wave_filter()
        counts = minimal_fu_counts(g, SPEC, 21)
        assert counts["mult"] == 1

    def test_below_critical_path_rejected(self):
        with pytest.raises(ScheduleError, match="below critical path"):
            minimal_fu_counts(elliptic_wave_filter(), SPEC, 10)

    def test_counts_shrink_with_length(self):
        g = discrete_cosine_transform()
        area = {}
        for length in (8, 12):
            counts = minimal_fu_counts(g, SPEC, length)
            area[length] = sum(SPEC.type_named(t).area * c
                               for t, c in counts.items())
        assert area[12] <= area[8]


class TestScheduleGraph:
    def test_defaults_to_critical_path(self):
        g = hal_diffeq()
        schedule = schedule_graph(g, SPEC)
        assert schedule.length == 6

    def test_explicit_counts_respected(self):
        g = hal_diffeq()
        schedule = schedule_graph(g, SPEC, 8,
                                  fu_counts={"adder": 1, "mult": 2})
        assert schedule.min_fus()["mult"] <= 2

    def test_fds_method(self):
        g = hal_diffeq()
        schedule = schedule_graph(g, SPEC, 8, method="fds")
        schedule.validate()
        assert schedule.length == 8

    def test_unknown_method_rejected(self):
        with pytest.raises(ScheduleError, match="unknown scheduling"):
            schedule_graph(hal_diffeq(), SPEC, 8, method="magic")

    def test_labels(self):
        schedule = schedule_graph(hal_diffeq(), SPEC, 7, label="mylabel")
        assert schedule.label == "mylabel"
