"""Unit tests for the force-directed scheduler."""

import pytest

from repro.errors import ScheduleError
from repro.bench import hal_diffeq, elliptic_wave_filter
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.forcedirected import force_directed_schedule
from repro.sched.list_scheduler import list_schedule

SPEC = HardwareSpec.non_pipelined()


class TestForceDirected:
    def test_valid_schedule(self):
        schedule = force_directed_schedule(hal_diffeq(), SPEC, 8)
        schedule.validate()
        assert schedule.length == 8

    def test_too_short_raises(self):
        with pytest.raises(ScheduleError, match="below critical path"):
            force_directed_schedule(hal_diffeq(), SPEC, 3)

    def test_balances_concurrency(self):
        """FDS with slack should not exceed the all-ASAP peak demand."""
        b = CDFGBuilder("wide")
        b.input("x")
        for i in range(6):
            b.add(f"a{i}", "x", float(i), f"y{i}")
            b.add(f"b{i}", f"y{i}", 1.0, f"z{i}")
            b.output(f"z{i}")
        g = b.build()
        schedule = force_directed_schedule(g, SPEC, 6)
        peak = max(schedule.fu_demand()["adder"])
        assert peak <= 4  # ASAP would need 6 adders at step 0

    def test_ewf_19_feasible(self):
        schedule = force_directed_schedule(elliptic_wave_filter(), SPEC, 19)
        schedule.validate()
        # FDS should stay within reach of the list scheduler's minima
        assert schedule.min_fus()["mult"] <= 3

    def test_respects_anti_dependence(self):
        g = hal_diffeq()
        schedule = force_directed_schedule(g, SPEC, 7)
        for name, val in g.values.items():
            if not val.loop_carried or val.producer is None:
                continue
            for consumer, _ in val.consumers:
                if consumer != val.producer:
                    assert schedule.start[val.producer] >= \
                        schedule.start[consumer]

    def test_deterministic(self):
        a = force_directed_schedule(hal_diffeq(), SPEC, 8).start
        b = force_directed_schedule(hal_diffeq(), SPEC, 8).start
        assert a == b
