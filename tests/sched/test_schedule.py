"""Unit tests for the Schedule object and its analyses."""

import pytest

from repro.errors import ScheduleError
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.schedule import Schedule

SPEC = HardwareSpec.non_pipelined()


def toy():
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


class TestValidation:
    def test_valid_schedule_builds(self):
        Schedule(toy(), SPEC, 4, {"a1": 0, "m1": 1, "a2": 3})

    def test_unscheduled_op_rejected(self):
        with pytest.raises(ScheduleError, match="unscheduled"):
            Schedule(toy(), SPEC, 4, {"a1": 0, "m1": 1})

    def test_op_past_end_rejected(self):
        with pytest.raises(ScheduleError, match="outside schedule"):
            Schedule(toy(), SPEC, 4, {"a1": 0, "m1": 3, "a2": 3})

    def test_precedence_violation_rejected(self):
        with pytest.raises(ScheduleError, match="before its data"):
            Schedule(toy(), SPEC, 4, {"a1": 1, "m1": 1, "a2": 3})

    def test_anti_dependence_violation_rejected(self):
        b = CDFGBuilder("loop", cyclic=True)
        b.input("i")
        b.op("c", "add", ["sv", "i"], "t")
        b.op("p", "add", ["t", "i"], "sv")
        b.loop_value("sv").output("t")
        g = b.build()
        with pytest.raises(ScheduleError):
            Schedule(g, SPEC, 4, {"c": 3, "p": 1})

    def test_zero_length_rejected(self):
        with pytest.raises(ScheduleError, match=">= 1"):
            Schedule(toy(), SPEC, 0, {})


class TestAnalyses:
    def schedule(self):
        return Schedule(toy(), SPEC, 5, {"a1": 0, "m1": 1, "a2": 3})

    def test_end_and_busy_steps(self):
        s = self.schedule()
        assert s.end("m1") == 2
        assert s.busy_steps("m1") == (1, 2)
        assert s.busy_steps("a1") == (0,)

    def test_pipelined_busy_is_issue_slot(self):
        spec = HardwareSpec.pipelined()
        s = Schedule(toy(), spec, 5, {"a1": 0, "m1": 1, "a2": 3})
        assert s.busy_steps("m1") == (1,)
        assert s.end("m1") == 2

    def test_fu_demand_and_minimum(self):
        s = self.schedule()
        demand = s.fu_demand()
        assert demand["mult"] == [0, 1, 1, 0, 0]
        assert s.min_fus() == {"adder": 1, "mult": 1}

    def test_min_registers(self):
        s = self.schedule()
        assert s.min_registers() == 2

    def test_ops_at(self):
        s = self.schedule()
        assert s.ops_at(1) == ["m1"]
        assert s.ops_at(2) == ["m1"]

    def test_table_rendering(self):
        text = self.schedule().table()
        assert "control steps" in text
        assert "s 0" in text or "s0" in text.replace(" ", "")

    def test_repr(self):
        assert "length=5" in repr(self.schedule())
