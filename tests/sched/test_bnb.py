"""Tests for the exact branch-and-bound scheduler."""

import pytest

from repro.errors import ScheduleError
from repro.bench import hal_diffeq, random_cdfg, figure1_cdfg
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.bnb import branch_and_bound_schedule
from repro.sched.list_scheduler import list_schedule

SPEC = HardwareSpec.non_pipelined()


class TestOptimality:
    def test_matches_known_optimum_serial_adds(self):
        b = CDFGBuilder("par")
        b.input("x")
        for i in range(5):
            b.add(f"a{i}", "x", float(i), f"y{i}")
            b.output(f"y{i}")
        schedule = branch_and_bound_schedule(b.build(), SPEC,
                                             {"adder": 2, "mult": 0})
        assert schedule.length == 3  # ceil(5/2)

    def test_diffeq_optimal_with_limited_mults(self):
        graph = hal_diffeq()
        exact = branch_and_bound_schedule(graph, SPEC,
                                          {"adder": 1, "mult": 2})
        greedy = list_schedule(graph, SPEC, {"adder": 1, "mult": 2})
        assert exact.length <= greedy.length
        exact.validate()

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_list_scheduler(self, seed):
        graph = random_cdfg(12, seed=seed)
        counts = {"adder": 2, "mult": 1}
        try:
            greedy = list_schedule(graph, SPEC, counts)
        except ScheduleError:
            pytest.skip("instance infeasible for these counts")
        exact = branch_and_bound_schedule(graph, SPEC, counts)
        assert exact.length <= greedy.length

    def test_list_scheduler_is_optimal_on_small_kernels(self):
        """On these small instances our greedy list scheduler actually
        achieves the exact optimum — the quality claim the allocation
        experiments rely on."""
        for factory, counts in ((hal_diffeq, {"adder": 2, "mult": 3}),
                                (figure1_cdfg, {"adder": 2, "mult": 1})):
            graph = factory()
            exact = branch_and_bound_schedule(graph, SPEC, counts)
            greedy = list_schedule(graph, SPEC, counts)
            assert greedy.length == exact.length


class TestGuards:
    def test_too_large_rejected(self):
        from repro.bench import elliptic_wave_filter
        with pytest.raises(ScheduleError, match="limited to"):
            branch_and_bound_schedule(elliptic_wave_filter(), SPEC,
                                      {"adder": 3, "mult": 3})

    def test_infeasible_bound_rejected(self):
        graph = hal_diffeq()
        with pytest.raises(ScheduleError, match="no feasible"):
            branch_and_bound_schedule(graph, SPEC,
                                      {"adder": 1, "mult": 1},
                                      upper_length=3)

    def test_anti_dependences_respected(self):
        graph = hal_diffeq()
        schedule = branch_and_bound_schedule(graph, SPEC,
                                             {"adder": 2, "mult": 2})
        for name, val in graph.values.items():
            if not val.loop_carried or val.producer is None:
                continue
            for consumer, _ in val.consumers:
                if consumer != val.producer:
                    assert schedule.start[val.producer] >= \
                        schedule.start[consumer]
