"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.errors import ScheduleError
from repro.bench import elliptic_wave_filter, discrete_cosine_transform
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.list_scheduler import list_schedule

SPEC = HardwareSpec.non_pipelined()


def parallel_adds(n):
    b = CDFGBuilder("par")
    b.input("x")
    for i in range(n):
        b.add(f"a{i}", "x", float(i), f"y{i}")
        b.output(f"y{i}")
    return b.build()


class TestResourceLimits:
    def test_serializes_on_one_adder(self):
        schedule = list_schedule(parallel_adds(4), SPEC, {"adder": 1,
                                                          "mult": 0})
        assert schedule.length == 4
        assert sorted(schedule.start.values()) == [0, 1, 2, 3]

    def test_two_adders_halve_length(self):
        schedule = list_schedule(parallel_adds(4), SPEC, {"adder": 2,
                                                          "mult": 0})
        assert schedule.length == 2

    def test_zero_units_rejected(self):
        with pytest.raises(ScheduleError, match="no 'adder' units"):
            list_schedule(parallel_adds(2), SPEC, {"adder": 0, "mult": 0})

    def test_target_length_enforced(self):
        with pytest.raises(ScheduleError, match="exceeding target"):
            list_schedule(parallel_adds(4), SPEC, {"adder": 1, "mult": 0},
                          target_length=2)

    def test_multicycle_blocks_unit(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.mul("m1", "x", 2.0, "p")
        b.mul("m2", "x", 3.0, "q")
        b.add("a", "p", "q", "r")
        b.output("r")
        schedule = list_schedule(b.build(), SPEC, {"adder": 1, "mult": 1})
        # one 2-cycle multiplier: second mul waits 2 steps
        assert abs(schedule.start["m1"] - schedule.start["m2"]) >= 2

    def test_pipelined_multiplier_issues_every_step(self):
        b = CDFGBuilder("g")
        b.input("x")
        b.mul("m1", "x", 2.0, "p")
        b.mul("m2", "x", 3.0, "q")
        b.add("a", "p", "q", "r")
        b.output("r")
        schedule = list_schedule(b.build(), HardwareSpec.pipelined(),
                                 {"adder": 1, "pmult": 1})
        assert abs(schedule.start["m1"] - schedule.start["m2"]) == 1


class TestBenchmarks:
    def test_ewf_17_with_minimal_units(self):
        g = elliptic_wave_filter()
        schedule = list_schedule(g, SPEC, {"adder": 5, "mult": 2},
                                 target_length=17)
        assert schedule.length == 17
        schedule.validate()

    def test_ewf_19_two_by_two(self):
        g = elliptic_wave_filter()
        schedule = list_schedule(g, SPEC, {"adder": 2, "mult": 2},
                                 target_length=19)
        schedule.validate()

    def test_dct_schedules(self):
        g = discrete_cosine_transform()
        schedule = list_schedule(g, SPEC, {"adder": 4, "mult": 4},
                                 target_length=10)
        schedule.validate()

    def test_loop_producer_after_consumers(self):
        from repro.bench import hal_diffeq
        g = hal_diffeq()
        schedule = list_schedule(g, SPEC, {"adder": 2, "mult": 3})
        for name, val in g.values.items():
            if not val.loop_carried or val.producer is None:
                continue
            for consumer, _ in val.consumers:
                if consumer != val.producer:
                    assert schedule.start[val.producer] >= \
                        schedule.start[consumer]
