"""Tests for the textual CDFG netlist format."""

import pytest

from repro.errors import CDFGError
from repro.bench import elliptic_wave_filter, hal_diffeq, \
    discrete_cosine_transform
from repro.cdfg.interp import evaluate_once
from repro.io import format_cdfg, parse_cdfg


SAMPLE = """
# a tiny accumulator
graph acc cyclic
input  x
loop   sv
output y
op a1 add x sv -> y
op a2 add y #0.0 -> sv
"""


class TestParse:
    def test_sample(self):
        graph = parse_cdfg(SAMPLE)
        assert graph.cyclic
        assert graph.inputs == ["x"]
        assert graph.loop_values == ["sv"]
        assert len(graph) == 2

    def test_comments_and_constants_coexist(self):
        graph = parse_cdfg("graph g\ninput a\noutput y\n"
                           "op m mul a #-0.5 -> y  # halve and negate\n")
        op = graph.ops["m"]
        from repro.cdfg.nodes import Const
        assert any(isinstance(o, Const) and o.value == -0.5
                   for o in op.operands)

    def test_missing_graph_line(self):
        with pytest.raises(CDFGError, match="must start"):
            parse_cdfg("input x\n")

    def test_duplicate_graph_line(self):
        with pytest.raises(CDFGError, match="duplicate"):
            parse_cdfg("graph a\ngraph b\n")

    def test_malformed_op(self):
        with pytest.raises(CDFGError, match="needs '-> result'"):
            parse_cdfg("graph g\ninput x\nop a add x x\n")

    def test_bad_constant(self):
        with pytest.raises(CDFGError, match="bad constant"):
            parse_cdfg("graph g\ninput x\noutput y\nop a add x #1x2 -> y\n")

    def test_word_after_hash_is_a_comment(self):
        # '#zz' does not look numeric, so it starts a comment: the op line
        # is then malformed (no '->' remains)
        with pytest.raises(CDFGError, match="->"):
            parse_cdfg("graph g\ninput x\noutput y\nop a add x #zz -> y\n")

    def test_unknown_keyword(self):
        with pytest.raises(CDFGError, match="unknown keyword"):
            parse_cdfg("graph g\nwibble x\n")

    def test_empty_rejected(self):
        with pytest.raises(CDFGError, match="empty"):
            parse_cdfg("  \n# nothing\n")


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [
        elliptic_wave_filter, hal_diffeq, discrete_cosine_transform])
    def test_benchmarks_roundtrip(self, factory):
        graph = factory()
        twin = parse_cdfg(format_cdfg(graph))
        assert sorted(twin.ops) == sorted(graph.ops)
        assert twin.cyclic == graph.cyclic
        assert twin.inputs == graph.inputs
        assert twin.outputs == graph.outputs

    def test_semantics_survive(self):
        graph = hal_diffeq()
        twin = parse_cdfg(format_cdfg(graph))
        env = {"dx": 0.25, "x": -1.0, "y": 0.5, "u": 2.0}
        assert evaluate_once(twin, env) == evaluate_once(graph, env)

    def test_format_stable(self):
        graph = hal_diffeq()
        once = format_cdfg(graph)
        twice = format_cdfg(parse_cdfg(once))
        assert once == twice
