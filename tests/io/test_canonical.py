"""Canonical-encoding regression tests.

``repro.service`` hashes these encodings into content-addressed cache
keys, so two semantically equal objects must serialize to byte-identical
JSON no matter what order they were constructed in.
"""

import json
import random

from repro.bench import elliptic_wave_filter
from repro.cdfg.graph import CDFG
from repro.cdfg.nodes import Operation, Value
from repro.datapath.units import HardwareSpec, make_registers
from repro.io import (binding_from_json, binding_to_json, canonical_dumps,
                      cdfg_from_json, cdfg_to_dict, cdfg_to_json,
                      schedule_to_json, spec_to_dict)
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def shuffled_copy(graph: CDFG, seed: int) -> CDFG:
    """The same graph with operations/values inserted in random order."""
    rng = random.Random(seed)
    ops = [Operation(o.name, o.kind, o.operands, o.result)
           for o in graph.ops.values()]
    vals = [Value(v.name, is_input=v.is_input, is_output=v.is_output,
                  loop_carried=v.loop_carried, arrival_step=v.arrival_step)
            for v in graph.values.values()]
    rng.shuffle(ops)
    rng.shuffle(vals)
    return CDFG(graph.name, ops, vals, cyclic=graph.cyclic)


class TestCanonicalCDFG:
    def test_equal_graphs_encode_identically(self):
        graph = elliptic_wave_filter()
        for seed in (1, 2, 3):
            assert cdfg_to_json(shuffled_copy(graph, seed)) == \
                cdfg_to_json(graph)

    def test_node_lists_are_name_ordered(self):
        data = cdfg_to_dict(shuffled_copy(elliptic_wave_filter(), 4))
        op_names = [op["name"] for op in data["operations"]]
        value_names = [v["name"] for v in data["values"]]
        assert op_names == sorted(op_names)
        assert value_names == sorted(value_names)

    def test_round_trip_is_a_fixpoint(self):
        text = cdfg_to_json(elliptic_wave_filter())
        assert cdfg_to_json(cdfg_from_json(text)) == text

    def test_round_trip_preserves_structure(self):
        graph = elliptic_wave_filter()
        again = cdfg_from_json(cdfg_to_json(shuffled_copy(graph, 5)))
        assert set(again.ops) == set(graph.ops)
        assert again.topo_order() == graph.topo_order()


class TestCanonicalSpecAndSchedule:
    def test_spec_types_are_name_ordered(self):
        spec = HardwareSpec.non_pipelined()
        names = [t["name"] for t in spec_to_dict(spec)["fu_types"]]
        assert names == sorted(names)

    def test_schedule_encoding_ignores_graph_build_order(self):
        graph = elliptic_wave_filter()
        spec = HardwareSpec.non_pipelined()
        a = schedule_graph(graph, spec, 19)
        b = schedule_graph(shuffled_copy(graph, 6), spec, 19)
        assert schedule_to_json(a) == schedule_to_json(b)


class TestCanonicalBinding:
    def test_binding_round_trip_is_a_fixpoint(self):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
        result = SalsaAllocator(
            seed=3, restarts=1,
            config=ImproveConfig(max_trials=2, moves_per_trial=120)
        ).allocate(graph, schedule=schedule)
        text = binding_to_json(result.binding)
        assert binding_to_json(binding_from_json(text)) == text

    def test_canonical_dumps_is_minified_and_sorted(self):
        text = canonical_dumps({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'
        assert json.loads(text) == {"a": [1, 2], "b": 1}
