"""Property tests: serialization round-trips over random CDFGs."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench import random_cdfg
from repro.cdfg.interp import evaluate_once, run_iterations
from repro.cdfg.validate import validate_cdfg
from repro.io import (cdfg_from_json, cdfg_to_json, format_cdfg,
                      parse_cdfg)

SLOW = settings(deadline=None, max_examples=30,
                suppress_health_check=[HealthCheck.too_slow])


@given(st.integers(0, 500), st.integers(6, 30),
       st.sampled_from([0.0, 0.15]))
@SLOW
def test_json_roundtrip_random_graphs(seed, n_ops, loop_fraction):
    graph = random_cdfg(n_ops, seed=seed, loop_fraction=loop_fraction)
    twin = cdfg_from_json(cdfg_to_json(graph))
    validate_cdfg(twin)
    assert sorted(twin.ops) == sorted(graph.ops)
    assert {n: str(o) for n, o in twin.ops.items()} == \
        {n: str(o) for n, o in graph.ops.items()}
    assert twin.loop_values == graph.loop_values


@given(st.integers(0, 500), st.integers(6, 30))
@SLOW
def test_textual_roundtrip_random_graphs(seed, n_ops):
    graph = random_cdfg(n_ops, seed=seed)
    twin = parse_cdfg(format_cdfg(graph))
    validate_cdfg(twin)
    assert sorted(twin.ops) == sorted(graph.ops)
    env = {name: float(i + 1) for i, name in enumerate(graph.inputs)}
    assert evaluate_once(twin, env) == evaluate_once(graph, env)


@given(st.integers(0, 300), st.integers(10, 24))
@SLOW
def test_cyclic_textual_roundtrip_semantics(seed, n_ops):
    graph = random_cdfg(n_ops, seed=seed, loop_fraction=0.15)
    twin = parse_cdfg(format_cdfg(graph))
    streams = {name: [0.5, -1.0, 2.0] for name in graph.inputs}
    state = {name: 0.25 for name in graph.loop_values}
    assert run_iterations(twin, streams, state, 3) == \
        run_iterations(graph, streams, state, 3)
