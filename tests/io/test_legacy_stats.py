"""Pin the legacy telemetry-payload path against an on-disk fixture.

``ImproveStats`` grew many fields after the first release (per-move
counters, trial timings, phase profiles, ``stopped_early``); loading
stats JSON written before those existed must keep working with default
values, not KeyError.  The fixture is a file, not an inline dict, so the
pinned payload cannot silently drift with the dataclass.
"""

import json
import os

from repro.core.improve import ImproveStats
from repro.io import stats_from_json, stats_to_json

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "legacy_stats.json")


def load_fixture_text() -> str:
    with open(FIXTURE) as fh:
        return fh.read()


class TestLegacyStatsPayload:
    def test_fixture_is_genuinely_legacy(self):
        runs = json.loads(load_fixture_text())["runs"]
        modern_only = {"per_move", "trial_seconds", "uphill_used",
                       "best_trace", "seconds", "seed", "phase_ns",
                       "phase_samples", "stopped_early"}
        for run in runs:
            assert not modern_only & set(run)

    def test_loads_with_defaults(self):
        first, second = stats_from_json(load_fixture_text())

        assert first.trials_run == 5
        assert first.moves_attempted == 7500
        assert first.final_cost is not None
        assert first.final_cost.mux_count == 24
        assert first.per_move_accepts == {"F1": 300, "R1": 1400, "R2": 600}
        # absent extended telemetry falls back to the dataclass defaults
        assert first.per_move == {}
        assert first.trial_seconds == []
        assert first.uphill_used == []
        assert first.best_trace == []
        assert first.seconds == 0.0
        assert first.seed is None
        assert first.phase_ns == {}
        assert first.phase_samples == {}
        assert not first.stopped_early

        # null costs (a run that never completed) survive too
        assert second.initial_cost is None
        assert second.final_cost is None

    def test_legacy_payload_round_trips_through_modern_codec(self):
        loaded = stats_from_json(load_fixture_text())
        again = stats_from_json(stats_to_json(loaded))
        assert [s.to_dict() for s in again] == [s.to_dict() for s in loaded]

    def test_from_dict_rejects_nothing_it_used_to_accept(self):
        # the five original aggregate fields are still the only required
        # keys; everything later must be optional
        minimal = {"trials_run": 1, "moves_attempted": 10,
                   "moves_applied": 8, "moves_accepted": 4,
                   "uphill_accepted": 0, "initial_cost": None,
                   "final_cost": None, "per_move_accepts": {},
                   "cost_trace": []}
        stats = ImproveStats.from_dict(minimal)
        assert stats.trials_run == 1
        assert stats.summary().startswith("improve: 1 trials")
