"""Tests for the expression-language frontend."""

import math

import pytest

from repro.errors import CDFGError
from repro.cdfg.interp import evaluate_once, run_iterations
from repro.io import cdfg_from_assignments


class TestLowering:
    def test_simple_dataflow(self):
        graph = cdfg_from_assignments(
            "g", "y = a * b + c\n", inputs=["a", "b", "c"], outputs=["y"])
        out = evaluate_once(graph, {"a": 2, "b": 3, "c": 4})
        assert out["y"] == 10

    def test_operator_coverage(self):
        graph = cdfg_from_assignments(
            "g", "y = (a + b) * (a - b) / 2.0\n",
            inputs=["a", "b"], outputs=["y"])
        out = evaluate_once(graph, {"a": 5, "b": 3})
        assert out["y"] == pytest.approx((5 + 3) * (5 - 3) / 2.0)

    def test_unary_minus(self):
        graph = cdfg_from_assignments(
            "g", "y = -a + 1.0\n", inputs=["a"], outputs=["y"])
        assert evaluate_once(graph, {"a": 4})["y"] == -3

    def test_constant_folding(self):
        graph = cdfg_from_assignments(
            "g", "y = a * (2.0 * 3.0)\n", inputs=["a"], outputs=["y"])
        # 2*3 folds: exactly one multiplication remains
        assert graph.op_count_by_kind()["mul"] == 1

    def test_state_reads_previous_iteration(self):
        graph = cdfg_from_assignments(
            "acc", "s = s0 + x\ns0 = s\n",
            inputs=["x"], outputs=["s"], state=["s0"])
        trace = run_iterations(graph, {"x": [1, 2, 3]}, {"s0": 0}, 3)
        assert [t["s"] for t in trace] == [1, 3, 6]

    def test_bare_copy_becomes_pass(self):
        graph = cdfg_from_assignments(
            "d", "y = x + w1\nw1 = y\n",
            inputs=["x"], outputs=["y"], state=["w1"])
        assert graph.op_count_by_kind().get("pass", 0) == 1


class TestErrors:
    def test_unknown_value(self):
        with pytest.raises(CDFGError, match="unknown value"):
            cdfg_from_assignments("g", "y = ghost + 1.0\n",
                                  inputs=["a"], outputs=["y"])

    def test_double_assignment(self):
        with pytest.raises(CDFGError, match="assigned twice"):
            cdfg_from_assignments("g", "y = a + 1.0\ny = a + 2.0\n",
                                  inputs=["a"], outputs=["y"])

    def test_assign_to_input(self):
        with pytest.raises(CDFGError, match="cannot assign to input"):
            cdfg_from_assignments("g", "a = a + 1.0\n",
                                  inputs=["a"], outputs=["a"])

    def test_constant_assignment_rejected(self):
        with pytest.raises(CDFGError):
            cdfg_from_assignments("g", "y = 1.0\n", inputs=["a"],
                                  outputs=["y"])

    def test_unsupported_syntax(self):
        with pytest.raises(CDFGError):
            cdfg_from_assignments("g", "y = a ** 2\n", inputs=["a"],
                                  outputs=["y"])
        with pytest.raises(CDFGError, match="syntax error"):
            cdfg_from_assignments("g", "y = = a\n", inputs=["a"],
                                  outputs=["y"])


class TestEndToEnd:
    def test_biquad_allocates_and_verifies(self):
        from repro.sched import HardwareSpec, schedule_graph
        from repro.core import ImproveConfig, SalsaAllocator
        from repro.datapath.simulate import verify_binding

        graph = cdfg_from_assignments("biquad", """
w  = x - 0.1716 * w2
y  = 0.2929 * (w + w2) + 0.5858 * w1
w2 = w1
w1 = w
""", inputs=["x"], outputs=["y"], state=["w1", "w2"])
        schedule = schedule_graph(graph, HardwareSpec.non_pipelined())
        result = SalsaAllocator(
            seed=1, restarts=1,
            config=ImproveConfig(max_trials=3,
                                 moves_per_trial=150)).allocate(
            graph, schedule=schedule)
        verify_binding(result.binding, iterations=6)

    def test_expr_filter_matches_direct_math(self):
        graph = cdfg_from_assignments(
            "ma", "y = 0.5 * (x + xp)\nxp = x\n",
            inputs=["x"], outputs=["y"], state=["xp"])
        xs = [1.0, 5.0, -2.0, 4.0]
        trace = run_iterations(graph, {"x": xs}, {"xp": 0.0}, 4)
        for i, t in enumerate(trace):
            prev = xs[i - 1] if i else 0.0
            assert t["y"] == pytest.approx(0.5 * (xs[i] + prev))
