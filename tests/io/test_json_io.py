"""Round-trip tests for JSON serialization of CDFGs/schedules/bindings."""

import json

import pytest

from repro.bench import elliptic_wave_filter, hal_diffeq
from repro.cdfg.interp import evaluate_once
from repro.cdfg.validate import validate_cdfg
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator
from repro.alloc.checker import check_binding
from repro.io import (SerializationError, binding_from_json,
                      binding_to_json, cdfg_from_json, cdfg_to_json,
                      schedule_from_json, schedule_to_json)

SPEC = HardwareSpec.non_pipelined()


class TestCdfgJson:
    def test_roundtrip_structure(self):
        graph = elliptic_wave_filter()
        twin = cdfg_from_json(cdfg_to_json(graph))
        validate_cdfg(twin)
        assert sorted(twin.ops) == sorted(graph.ops)
        assert sorted(twin.values) == sorted(graph.values)
        assert twin.cyclic == graph.cyclic
        assert twin.loop_values == graph.loop_values

    def test_roundtrip_semantics(self):
        graph = hal_diffeq()
        twin = cdfg_from_json(cdfg_to_json(graph))
        env = {"dx": 0.1, "x": 1.0, "y": 2.0, "u": 3.0}
        assert evaluate_once(twin, env) == evaluate_once(graph, env)

    def test_constants_preserved(self):
        graph = hal_diffeq()
        twin = cdfg_from_json(cdfg_to_json(graph))
        for name, op in graph.ops.items():
            assert str(twin.ops[name]) == str(op)

    def test_type_mismatch_rejected(self):
        graph = hal_diffeq()
        text = cdfg_to_json(graph)
        with pytest.raises(SerializationError, match="expected a"):
            schedule_from_json(text)

    def test_bad_json_rejected(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            cdfg_from_json("{nope")

    def test_bad_version_rejected(self):
        data = json.loads(cdfg_to_json(hal_diffeq()))
        data["format"] = 99
        with pytest.raises(SerializationError, match="version"):
            cdfg_from_json(json.dumps(data))


class TestScheduleJson:
    def test_roundtrip(self):
        schedule = schedule_graph(hal_diffeq(), SPEC, 7)
        twin = schedule_from_json(schedule_to_json(schedule))
        assert twin.start == schedule.start
        assert twin.length == schedule.length
        assert twin.min_fus() == schedule.min_fus()
        assert twin.min_registers() == schedule.min_registers()

    def test_pipelined_spec_preserved(self):
        schedule = schedule_graph(elliptic_wave_filter(),
                                  HardwareSpec.pipelined(), 17)
        twin = schedule_from_json(schedule_to_json(schedule))
        assert twin.spec.type_for_kind("mul").pipelined


class TestBindingJson:
    @pytest.fixture(scope="class")
    def allocated(self):
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 19)
        return SalsaAllocator(
            seed=3, restarts=1,
            config=ImproveConfig(max_trials=4,
                                 moves_per_trial=250)).allocate(
            graph, schedule=schedule)

    def test_roundtrip_cost_identical(self, allocated):
        twin = binding_from_json(binding_to_json(allocated.binding))
        assert twin.cost().total == pytest.approx(allocated.cost.total)
        assert twin.cost().mux_count == allocated.cost.mux_count

    def test_roundtrip_stays_legal_and_correct(self, allocated):
        twin = binding_from_json(binding_to_json(allocated.binding))
        assert check_binding(twin) == []
        verify_binding(twin, iterations=3)

    def test_passthroughs_preserved(self, allocated):
        twin = binding_from_json(binding_to_json(allocated.binding))
        assert twin.pt_impl == allocated.binding.pt_impl

    def test_stable_output(self, allocated):
        a = binding_to_json(allocated.binding)
        b = binding_to_json(binding_from_json(a))
        assert a == b
