"""Unit tests for clique-partitioning and bipartite-matching baselines."""

import pytest

from repro.errors import AllocationError
from repro.bench import discrete_cosine_transform, hal_diffeq, \
    elliptic_wave_filter
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.alloc.clique import clique_partition_registers
from repro.alloc.bipartite import bipartite_fu_binding
from repro.alloc.leftedge import left_edge

SPEC = HardwareSpec.non_pipelined()


class TestClique:
    def test_no_overlap_within_register(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        assignment = clique_partition_registers(schedule)
        occupancy = {}
        for value, reg in assignment.items():
            for step in schedule.lifetimes.interval(value).steps:
                assert (reg, step) not in occupancy
                occupancy[(reg, step)] = value

    def test_register_count_at_most_value_count(self):
        graph = discrete_cosine_transform()
        schedule = schedule_graph(graph, SPEC, 10)
        assignment = clique_partition_registers(schedule)
        assert len(set(assignment.values())) <= len(assignment)

    def test_merging_actually_happens(self):
        graph = discrete_cosine_transform()
        schedule = schedule_graph(graph, SPEC, 10)
        assignment = clique_partition_registers(schedule)
        # strictly fewer registers than values proves cliques merged
        assert len(set(assignment.values())) < len(assignment)

    def test_budget_enforced(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        with pytest.raises(AllocationError):
            clique_partition_registers(schedule, register_names=["R0"])


class TestBipartite:
    def binding_for(self, graph, length):
        schedule = schedule_graph(graph, SPEC, length)
        fus = SPEC.make_fus(schedule.min_fus())
        value_reg = left_edge(schedule)
        return schedule, fus, bipartite_fu_binding(schedule, fus, value_reg)

    def test_every_op_bound(self):
        graph = hal_diffeq()
        schedule, fus, op_fu = self.binding_for(graph, 6)
        assert set(op_fu) == set(graph.ops)

    def test_no_fu_conflicts(self):
        graph = elliptic_wave_filter()
        schedule, fus, op_fu = self.binding_for(graph, 19)
        busy = {}
        for op_name, fu in op_fu.items():
            for step in schedule.busy_steps(op_name):
                assert (fu, step) not in busy, (op_name, fu, step)
                busy[(fu, step)] = op_name

    def test_type_compatibility(self):
        graph = hal_diffeq()
        schedule, fus, op_fu = self.binding_for(graph, 6)
        by_name = {f.name: f for f in fus}
        for op_name, fu in op_fu.items():
            kind = graph.ops[op_name].kind
            assert by_name[fu].fu_type.supports(kind)

    def test_insufficient_units_rejected(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        fus = SPEC.make_fus({"adder": 1, "mult": 1})
        with pytest.raises(AllocationError):
            bipartite_fu_binding(schedule, fus, left_edge(schedule))
