"""Unit tests for left-edge register allocation."""

import pytest

from repro.errors import AllocationError
from repro.bench import (discrete_cosine_transform, elliptic_wave_filter,
                         hal_diffeq, random_cdfg)
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec
from repro.sched.explore import schedule_graph
from repro.sched.schedule import Schedule
from repro.alloc.leftedge import left_edge, left_edge_register_count

SPEC = HardwareSpec.non_pipelined()


def assignment_is_legal(schedule, assignment):
    """No two overlapping values share a register."""
    occupancy = {}
    for value, reg in assignment.items():
        for step in schedule.lifetimes.interval(value).steps:
            key = (reg, step)
            assert key not in occupancy, \
                f"{value} and {occupancy[key]} share {key}"
            occupancy[key] = value


class TestLeftEdge:
    def test_linear_lifetimes_use_max_overlap(self):
        graph = discrete_cosine_transform()
        schedule = schedule_graph(graph, SPEC, 10)
        assert left_edge_register_count(schedule) == \
            schedule.min_registers()

    def test_assignment_legal_on_benchmarks(self):
        for graph, length in ((discrete_cosine_transform(), 10),
                              (elliptic_wave_filter(), 19),
                              (hal_diffeq(), 6)):
            schedule = schedule_graph(graph, SPEC, length)
            assignment_is_legal(schedule, left_edge(schedule))

    def test_every_stored_value_assigned(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        assignment = left_edge(schedule)
        for name in graph.values:
            if schedule.lifetimes.interval(name).birth < schedule.length:
                assert name in assignment

    def test_too_few_names_rejected(self):
        graph = hal_diffeq()
        schedule = schedule_graph(graph, SPEC, 6)
        with pytest.raises(AllocationError, match="needs"):
            left_edge(schedule, ["R0", "R1"])

    def test_cyclic_may_exceed_max_overlap(self):
        """Circular-arc coloring can need more than the clique bound —
        the theory gap segment-level binding closes."""
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 17)
        used = left_edge_register_count(schedule)
        assert used >= schedule.min_registers()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        graph = random_cdfg(20, seed=seed)
        schedule = schedule_graph(graph, SPEC)
        assignment_is_legal(schedule, left_edge(schedule))
