"""Exact-allocator tests: certify the heuristics reach true optima."""

import pytest

from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec, make_registers
from repro.errors import AllocationError
from repro.sched.explore import schedule_graph
from repro.alloc.checker import check_binding
from repro.alloc.exact import exact_traditional_allocation
from repro.core import ImproveConfig, MoveSet, TraditionalAllocator
from repro.datapath.simulate import verify_binding

SPEC = HardwareSpec.non_pipelined()


def tiny_graph():
    b = CDFGBuilder("tiny")
    b.input("a").input("b").input("c")
    b.add("o1", "a", "b", "v1")
    b.add("o2", "b", "c", "v2")
    b.add("o3", "v1", "v2", "v3")
    b.add("o4", "v3", "a", "v4")
    b.output("v4")
    return b.build()


@pytest.fixture(scope="module")
def exact_setup():
    graph = tiny_graph()
    schedule = schedule_graph(graph, SPEC, 4, fu_counts={"adder": 2,
                                                         "mult": 0})
    fus = SPEC.make_fus({"adder": 2})
    regs = make_registers(schedule.min_registers())
    return graph, schedule, fus, regs


class TestExact:
    def test_exact_is_legal_and_correct(self, exact_setup):
        _graph, schedule, fus, regs = exact_setup
        binding = exact_traditional_allocation(schedule, fus, regs)
        assert check_binding(binding) == []
        verify_binding(binding)

    def test_iterative_matches_exact_optimum(self, exact_setup):
        graph, schedule, fus, regs = exact_setup
        exact = exact_traditional_allocation(schedule, fus, regs)
        optimum = exact.cost().total

        best = None
        for seed in range(3):
            result = TraditionalAllocator(
                seed=seed, restarts=2,
                config=ImproveConfig(max_trials=6,
                                     moves_per_trial=300)).allocate(
                graph, schedule=schedule, registers=len(regs))
            if best is None or result.cost.total < best:
                best = result.cost.total
        assert best == pytest.approx(optimum)

    def test_search_space_guard(self):
        from repro.bench import elliptic_wave_filter
        graph = elliptic_wave_filter()
        schedule = schedule_graph(graph, SPEC, 19)
        fus = SPEC.make_fus(schedule.min_fus())
        regs = make_registers(schedule.min_registers())
        with pytest.raises(AllocationError, match="search space"):
            exact_traditional_allocation(schedule, fus, regs)

    def test_swap_optimization_helps_or_ties(self, exact_setup):
        _graph, schedule, fus, regs = exact_setup
        with_swaps = exact_traditional_allocation(schedule, fus, regs,
                                                  optimize_swaps=True)
        without = exact_traditional_allocation(schedule, fus, regs,
                                               optimize_swaps=False)
        assert with_swaps.cost().total <= without.cost().total + 1e-9
