"""Unit tests for complete constructive traditional-model allocations."""

import pytest

from repro.errors import AllocationError
from repro.bench import discrete_cosine_transform, hal_diffeq
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.alloc import constructive_allocation, check_binding
from repro.alloc.leftedge import left_edge_register_count

SPEC = HardwareSpec.non_pipelined()


def build(graph, length, rm, fm, extra=1):
    schedule = schedule_graph(graph, SPEC, length)
    regs = max(left_edge_register_count(schedule),
               schedule.min_registers()) + extra
    return constructive_allocation(
        schedule, SPEC.make_fus(schedule.min_fus()), make_registers(regs),
        register_method=rm, fu_method=fm)


@pytest.mark.parametrize("rm", ["leftedge", "clique"])
@pytest.mark.parametrize("fm", ["first", "bipartite"])
class TestCombinations:
    def test_legal(self, rm, fm):
        binding = build(hal_diffeq(), 6, rm, fm)
        assert check_binding(binding) == []

    def test_simulates_correctly(self, rm, fm):
        binding = build(hal_diffeq(), 6, rm, fm)
        verify_binding(binding, iterations=3)

    def test_monolithic(self, rm, fm):
        binding = build(discrete_cosine_transform(), 10, rm, fm)
        assert all(len(r) == 1 for r in binding.placements.values())
        assert not binding.pt_impl


class TestErrors:
    def test_unknown_register_method(self):
        schedule = schedule_graph(hal_diffeq(), SPEC, 6)
        with pytest.raises(AllocationError, match="register method"):
            constructive_allocation(
                schedule, SPEC.make_fus(schedule.min_fus()),
                make_registers(10), register_method="magic")

    def test_unknown_fu_method(self):
        schedule = schedule_graph(hal_diffeq(), SPEC, 6)
        with pytest.raises(AllocationError, match="FU method"):
            constructive_allocation(
                schedule, SPEC.make_fus(schedule.min_fus()),
                make_registers(10), fu_method="magic")


class TestQualityOrdering:
    def test_bipartite_no_worse_than_first_for_fixed_registers(self):
        """Matching minimizes new connections given the register map; it
        should rarely lose to first-available — allow small noise but
        catch gross regressions."""
        a = build(discrete_cosine_transform(), 10, "leftedge", "first")
        b = build(discrete_cosine_transform(), 10, "leftedge", "bipartite")
        assert b.cost().mux_count <= a.cost().mux_count + 3
