"""Unit tests for the binding legality checker (it must catch sabotage)."""

import pytest

from repro.errors import BindingError
from repro.alloc.checker import assert_legal, check_binding


class TestCheckerCatchesCorruption:
    def test_clean_binding_passes(self, diffeq_binding):
        assert check_binding(diffeq_binding) == []
        assert_legal(diffeq_binding)

    def test_unbound_op(self, diffeq_binding):
        diffeq_binding.set_op_fu("a1", None)
        assert any("unbound" in p for p in check_binding(diffeq_binding))

    def test_assert_legal_raises(self, diffeq_binding):
        diffeq_binding.set_op_fu("a1", None)
        with pytest.raises(BindingError, match="legality"):
            assert_legal(diffeq_binding)

    def test_missing_segment(self, diffeq_binding):
        b = diffeq_binding
        (value, step), _regs = next(iter(sorted(b.placements.items())))
        b.set_placements(value, step, ())
        assert any("no register" in p for p in check_binding(b))

    def test_wrong_read_source(self, diffeq_binding):
        b = diffeq_binding
        # point some consumer at a register that never holds its operand
        for (op_name, port), reg in sorted(b.read_src.items()):
            step = b.schedule.start[op_name]
            other = next(r for r in sorted(b.regs)
                         if b.reg_free(r, step))
            b.read_src[(op_name, port)] = other  # bypass the primitive
            break
        assert any("does not hold" in p for p in check_binding(b))

    def test_stale_occupancy(self, diffeq_binding):
        b = diffeq_binding
        key = next(iter(sorted(b.reg_occ)))
        del b.reg_occ[key]
        assert any("occupancy" in p or "reg_occ" in p
                   for p in check_binding(b))

    def test_missing_out_src(self, diffeq_binding):
        b = diffeq_binding
        for out in b.graph.outputs:
            if not b.port_captured(out):
                b.set_out_src(out, None)
                assert any("sample register" in p
                           for p in check_binding(b))
                return
        pytest.skip("all outputs port-captured")

    def test_token_table_mismatch(self, diffeq_binding):
        b = diffeq_binding
        key = next(iter(sorted(b.fu_tokens)))
        del b.fu_tokens[key]
        assert any("token" in p for p in check_binding(b))

    def test_stale_occupancy_extra_entry(self, diffeq_binding):
        """A reg_occ entry with no backing placement must be reported."""
        b = diffeq_binding
        b.flush()
        free = next(r for r in sorted(b.regs) if (r, 0) not in b.reg_occ)
        vname = next(iter(sorted(b.graph.values)))
        b.reg_occ[(free, 0)] = vname  # bypass the primitives
        assert any("reg_occ" in p for p in check_binding(b))

    def test_dangling_read_source(self, diffeq_binding):
        """A consumer whose read_src entry vanished must be reported."""
        b = diffeq_binding
        key = next(iter(sorted(b.read_src)))
        del b.read_src[key]  # bypass the primitives
        assert any("no read source" in p for p in check_binding(b))

    def test_ledger_refcount_off_by_one(self, diffeq_binding):
        """One phantom connection use leaves mux/wire totals untouched but
        must still be caught by the per-connection refcount comparison."""
        b = diffeq_binding
        b.flush()
        assert check_binding(b) == []
        (src, sink), _count = next(iter(sorted(
            b.ledger.use_counts().items())))
        b.ledger.add(src, sink)
        problems = check_binding(b)
        assert any("refcount" in p for p in problems)

    def test_ledger_refcount_missing_use(self, diffeq_binding):
        """The symmetric corruption: a dropped use is caught too."""
        b = diffeq_binding
        b.flush()
        (src, sink), _count = next(iter(sorted(
            b.ledger.use_counts().items())))
        b.ledger.remove(src, sink)
        assert any("refcount" in p or "out of sync" in p
                   for p in check_binding(b))
