"""Unit tests for the binding legality checker (it must catch sabotage)."""

import pytest

from repro.errors import BindingError
from repro.alloc.checker import assert_legal, check_binding


class TestCheckerCatchesCorruption:
    def test_clean_binding_passes(self, diffeq_binding):
        assert check_binding(diffeq_binding) == []
        assert_legal(diffeq_binding)

    def test_unbound_op(self, diffeq_binding):
        diffeq_binding.set_op_fu("a1", None)
        assert any("unbound" in p for p in check_binding(diffeq_binding))

    def test_assert_legal_raises(self, diffeq_binding):
        diffeq_binding.set_op_fu("a1", None)
        with pytest.raises(BindingError, match="legality"):
            assert_legal(diffeq_binding)

    def test_missing_segment(self, diffeq_binding):
        b = diffeq_binding
        (value, step), _regs = next(iter(sorted(b.placements.items())))
        b.set_placements(value, step, ())
        assert any("no register" in p for p in check_binding(b))

    def test_wrong_read_source(self, diffeq_binding):
        b = diffeq_binding
        # point some consumer at a register that never holds its operand
        for (op_name, port), reg in sorted(b.read_src.items()):
            step = b.schedule.start[op_name]
            other = next(r for r in sorted(b.regs)
                         if b.reg_free(r, step))
            b.read_src[(op_name, port)] = other  # bypass the primitive
            break
        assert any("does not hold" in p for p in check_binding(b))

    def test_stale_occupancy(self, diffeq_binding):
        b = diffeq_binding
        key = next(iter(sorted(b.reg_occ)))
        del b.reg_occ[key]
        assert any("occupancy" in p or "reg_occ" in p
                   for p in check_binding(b))

    def test_missing_out_src(self, diffeq_binding):
        b = diffeq_binding
        for out in b.graph.outputs:
            if not b.port_captured(out):
                b.set_out_src(out, None)
                assert any("sample register" in p
                           for p in check_binding(b))
                return
        pytest.skip("all outputs port-captured")

    def test_token_table_mismatch(self, diffeq_binding):
        b = diffeq_binding
        key = next(iter(sorted(b.fu_tokens)))
        del b.fu_tokens[key]
        assert any("token" in p for p in check_binding(b))
