"""Shared fixtures: small graphs, schedules and bindings."""

from __future__ import annotations

import pytest

from repro.bench import (discrete_cosine_transform, elliptic_wave_filter,
                         figure1_cdfg, hal_diffeq)
from repro.cdfg.builder import CDFGBuilder
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched.explore import schedule_graph
from repro.core.initial import initial_allocation


@pytest.fixture
def toy_graph():
    """Three ops, two inputs, one output; add=1, mul=2 steps."""
    b = CDFGBuilder("toy")
    b.input("x").input("y")
    b.op("a1", "add", ["x", "y"], "s")
    b.op("m1", "mul", ["s", 0.5], "p")
    b.op("a2", "add", ["s", "p"], "q")
    b.output("q")
    return b.build()


@pytest.fixture
def loop_graph():
    """Tiny cyclic loop body with one loop-carried value."""
    b = CDFGBuilder("loop", cyclic=True)
    b.input("inp")
    b.op("a1", "add", ["inp", "sv"], "t")
    b.op("a2", "add", ["t", "t"], "sv")
    b.loop_value("sv").output("t")
    return b.build()


@pytest.fixture
def nonpipe_spec():
    return HardwareSpec.non_pipelined()


@pytest.fixture
def pipe_spec():
    return HardwareSpec.pipelined()


@pytest.fixture
def ewf():
    return elliptic_wave_filter()


@pytest.fixture
def dct():
    return discrete_cosine_transform()


@pytest.fixture
def diffeq():
    return hal_diffeq()


@pytest.fixture
def ewf19(ewf, nonpipe_spec):
    return schedule_graph(ewf, nonpipe_spec, 19)


@pytest.fixture
def ewf19_binding(ewf19, nonpipe_spec):
    fus = nonpipe_spec.make_fus(ewf19.min_fus())
    regs = make_registers(ewf19.min_registers() + 1)
    return initial_allocation(ewf19, fus, regs)


@pytest.fixture
def diffeq_binding(diffeq, nonpipe_spec):
    schedule = schedule_graph(diffeq, nonpipe_spec, 6)
    fus = nonpipe_spec.make_fus(schedule.min_fus())
    regs = make_registers(schedule.min_registers() + 1)
    return initial_allocation(schedule, fus, regs)
