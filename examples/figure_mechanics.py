#!/usr/bin/env python
"""Reproduce the cost mechanics of the paper's Figures 3 and 4.

Figure 3: a value's segments sit in two registers, so a transfer is
needed; routing it through an idle adder that already has both connections
("pass-through") saves a multiplexer over the direct register-to-register
wire.

Figure 4: a value read by operators on two functional units; storing a
copy in a second register removes a mux input at the second consumer.

Both situations are built with the real binding machinery and verified by
cycle-accurate simulation — the printed tables are the reproduction of the
figures' cost claims.
"""

from repro.analysis import figure3_experiment, figure4_experiment


def main() -> None:
    print(figure3_experiment().render())
    print()
    print(figure4_experiment().render())


if __name__ == "__main__":
    main()
