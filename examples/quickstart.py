#!/usr/bin/env python
"""Quickstart: allocate the elliptic wave filter with the SALSA model.

Walks the full flow of the paper on its primary benchmark:

1. build the EWF loop-body CDFG (26 additions, 8 multiplications);
2. schedule it into 19 control steps on the minimum hardware
   (2 adders, 2 two-cycle multipliers — the classic result);
3. run the traditional-model allocator, then extend it with the SALSA
   binding model (value segments, copies, pass-throughs);
4. verify the final datapath cycle-by-cycle against the CDFG interpreter;
5. print the binding-model contrast of the paper's Figures 1 and 2.
"""

from repro.bench import elliptic_wave_filter, figure1_cdfg
from repro.cdfg import LifetimeTable, insert_slack_nodes
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import (ImproveConfig, TraditionalAllocator,
                        salsa_from_traditional)


def main() -> None:
    graph = elliptic_wave_filter()
    print(graph.summary())
    print()

    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 19, label="ewf@19")
    print(f"Scheduled into {schedule.length} control steps on "
          f"{schedule.min_fus()} (minimum registers: "
          f"{schedule.min_registers()})")
    print()

    config = ImproveConfig(max_trials=8, moves_per_trial=500)
    trad = TraditionalAllocator(seed=7, restarts=2,
                                config=config).allocate(graph,
                                                        schedule=schedule)
    print(f"Traditional binding model : {trad.cost}")

    salsa = salsa_from_traditional(trad, config=config, seed=11)
    print(f"SALSA extended model      : {salsa.cost}")
    print(f"  pass-throughs in use    : {len(salsa.binding.pt_impl)}")
    moved = sum(1 for v in graph.values
                if not salsa.binding.port_captured(v)
                and len({salsa.binding.segment_regs(v, s)
                         for s in salsa.binding.interval(v).steps}) > 1)
    print(f"  values that move between registers: {moved}")
    print()

    verify_binding(salsa.binding, iterations=6)
    print("cycle-accurate simulation matches the CDFG interpreter "
          "for 6 loop iterations ✓")
    print()

    # Figures 1 and 2: the same small CDFG, monolithic vs segmented
    toy = figure1_cdfg()
    starts = {"o1": 0, "o2": 0, "o3": 1, "o4": 1, "o5": 3}
    lifetimes = LifetimeTable(toy, starts, spec.delays(), 4)
    expansion = insert_slack_nodes(toy, lifetimes, starts)
    print(f"Figure 1 CDFG: {len(toy)} operators, "
          f"{len(toy.values)} values")
    print(f"Figure 2 (SALSA form): {expansion.slack_count} slack nodes "
          f"added; segments such as "
          f"{sorted(v for v in expansion.graph.values if '@' in v)}")


if __name__ == "__main__":
    main()
