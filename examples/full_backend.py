#!/usr/bin/env python
"""The full back end: allocation -> controller + buses + persistence.

Takes a kernel written in the expression frontend through allocation and
then through every back-end view the library offers:

* the control-word table and a one-hot controller FSM (Verilog);
* the bus-oriented interconnect extraction (the paper's "future work"
  direction on improving the point-to-point model);
* JSON persistence of the complete allocation (reloadable, re-verified).
"""

import os

from repro.io import (binding_from_json, binding_to_json,
                      cdfg_from_assignments, format_cdfg)
from repro.datapath.buses import extract_buses
from repro.datapath.controller import controller_to_verilog, extract_control
from repro.datapath.netlist import build_netlist
from repro.datapath.rtl import netlist_to_verilog
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def main() -> None:
    graph = cdfg_from_assignments("lattice2", """
e1 = x - 0.35 * g1
g2 = g1 + 0.35 * e1
e2 = e1 - 0.21 * g0
y  = e2 + 0.0
g0 = g2
g1 = y
""", inputs=["x"], outputs=["y"], state=["g0", "g1"])
    print(graph.summary())
    print("\ntextual netlist form:\n" + format_cdfg(graph))

    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec)
    result = SalsaAllocator(
        seed=5, restarts=2,
        config=ImproveConfig(max_trials=6, moves_per_trial=400)).allocate(
        graph, schedule=schedule)
    verify_binding(result.binding, iterations=8)
    print(f"allocation: {result.cost} (verified over 8 samples)")

    netlist = build_netlist(result.binding)
    control = extract_control(netlist)
    print(control.summary())

    buses = extract_buses(netlist)
    print(buses)

    # regenerated outputs go to the untracked results/out/; the curated
    # golden copies live directly under results/
    outdir = "results/out"
    os.makedirs(outdir, exist_ok=True)
    with open(f"{outdir}/lattice2_controller.v", "w") as fh:
        fh.write(controller_to_verilog(control, name="lattice2_ctrl"))
    with open(f"{outdir}/lattice2_datapath.v", "w") as fh:
        fh.write(netlist_to_verilog(netlist))
    with open(f"{outdir}/lattice2_binding.json", "w") as fh:
        fh.write(binding_to_json(result.binding))
    print(f"wrote {outdir}/lattice2_{{controller,datapath}}.v and "
          f"{outdir}/lattice2_binding.json")

    # prove the persisted allocation is complete: reload and re-verify
    with open(f"{outdir}/lattice2_binding.json") as fh:
        reloaded = binding_from_json(fh.read())
    verify_binding(reloaded, iterations=4)
    assert reloaded.cost().total == result.cost.total
    print("reloaded binding re-verified: identical cost "
          f"({reloaded.cost().mux_count} muxes)")


if __name__ == "__main__":
    main()
