#!/usr/bin/env python
"""A guided tour of the SALSA move set (the paper's Table 1).

Builds an allocation for the HAL differential-equation benchmark and
applies one instance of every move F1–F5 / R1–R6, reporting the cost
impact and rolling each back — a live illustration of the degrees of
freedom the extended binding model adds.
"""

import random

from repro.bench import hal_diffeq
from repro.datapath.units import HardwareSpec, make_registers
from repro.sched import schedule_graph
from repro.core import initial_allocation
from repro.core.moves import MoveSet, rollback

DESCRIPTIONS = {
    "F1": "FU Exchange: exchange binding of 2 FUs",
    "F2": "FU Move: reassign operator to unused FU",
    "F3": "Operand Reverse: switch FU inputs",
    "F4": "Bind to Pass-Through: assign slack/data transfer to FU",
    "F5": "Unbind Pass-Through: eliminate pass-through binding",
    "R1": "Segment Exchange: exchange binding of 2 value segments",
    "R2": "Segment Move: reassign value segment to unused register",
    "R2b": "Segment Hop: move a lifetime suffix (one transfer)",
    "R3": "Value Exchange: exchange bindings of two selected values",
    "R4": "Value Move: assign all segments of a value to unused register",
    "R5": "Value Split: copy of a value segment",
    "R6": "Value Merge: eliminate copy of value segment",
}


def main() -> None:
    graph = hal_diffeq()
    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, 8)
    binding = initial_allocation(
        schedule, spec.make_fus(schedule.min_fus()),
        make_registers(schedule.min_registers() + 2))
    base = binding.cost()
    print(f"initial allocation: {base}")
    print()

    rng = random.Random(4)
    moves = {name: fn for name, fn, _w in MoveSet().enabled_moves()}
    # some moves need prior structure: hops create transfers for F4/F5,
    # splits create copies for R6
    warmup = ["R2b", "R2b", "F4", "R5"]
    kept = []
    for name in warmup:
        undos = moves[name](binding, rng)
        if undos:
            kept.append((name, undos))
    staged = binding.cost().total
    print(f"(after staging some transfers/copies: total {staged:.2f})\n")

    order = ["F1", "F2", "F3", "F4", "F5",
             "R1", "R2", "R2b", "R3", "R4", "R5", "R6"]
    for name in order:
        undos = moves[name](binding, rng)
        if undos is None:
            print(f"  {name:3s} {DESCRIPTIONS[name]:58s} (not applicable)")
            continue
        delta = binding.cost().total - staged
        print(f"  {name:3s} {DESCRIPTIONS[name]:58s} dCost {delta:+6.2f}")
        rollback(undos)
        binding.flush()

    print(f"\nevery move rolled back; cost restored to "
          f"{binding.cost().total:.2f}")


if __name__ == "__main__":
    main()
