#!/usr/bin/env python
"""DCT scenario: from CDFG to verified RTL (Table 3 / Figure 5 workload).

The paper's larger benchmark — a 48-operation 8-point DCT — taken through
the complete flow: scheduling, SALSA allocation, multiplexer merging,
cycle-accurate verification, and structural Verilog emission.
"""

import argparse
import os

from repro.bench import discrete_cosine_transform
from repro.cdfg import cdfg_to_dot, evaluate_once
from repro.datapath.muxmerge import merge_muxes
from repro.datapath.netlist import build_netlist
from repro.datapath.rtl import netlist_to_verilog
from repro.datapath.simulate import simulate_binding, verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csteps", type=int, default=10)
    parser.add_argument("--outdir", default="results/out")
    args = parser.parse_args()

    graph = discrete_cosine_transform()
    print(graph.summary())

    spec = HardwareSpec.non_pipelined()
    schedule = schedule_graph(graph, spec, args.csteps)
    print(f"\nschedule: {args.csteps} csteps, FUs {schedule.min_fus()}, "
          f"min registers {schedule.min_registers()}")

    result = SalsaAllocator(
        seed=11, restarts=3,
        config=ImproveConfig(max_trials=8, moves_per_trial=500)).allocate(
        graph, schedule=schedule)
    print(f"allocation: {result.cost}")

    verify_binding(result.binding, iterations=1)
    print("verified against the interpreter ✓")

    # show an actual transform: a cosine-ish input concentrates energy
    xs = {f"x{i}": [1.9, 1.4, 0.4, -0.8, -1.6, -1.9, -1.4, -0.4][i]
          for i in range(8)}
    ref = evaluate_once(graph, xs)
    trace = simulate_binding(result.binding,
                             {k: [v] for k, v in xs.items()}, {}, 1)
    print("\n   k   reference   datapath")
    for k in range(8):
        print(f"  X{k}  {ref[f'X{k}']:9.4f}  {trace.outputs[0][f'X{k}']:9.4f}")

    netlist = build_netlist(result.binding)
    report = merge_muxes(netlist)
    print(f"\n{report}")

    os.makedirs(args.outdir, exist_ok=True)
    verilog_path = os.path.join(args.outdir, "dct_datapath.v")
    with open(verilog_path, "w") as fh:
        fh.write(netlist_to_verilog(netlist))
    dot_path = os.path.join(args.outdir, "dct_cdfg.dot")
    with open(dot_path, "w") as fh:
        fh.write(cdfg_to_dot(graph, schedule=schedule.start))
    print(f"wrote {verilog_path} and {dot_path}")


if __name__ == "__main__":
    main()
