#!/usr/bin/env python
"""Design-space exploration of the elliptic wave filter (Table 2 scenario).

Sweeps the paper's schedule points (17/19/21 control steps, pipelined and
non-pipelined multipliers) and register budgets, allocating each with both
binding models and tabulating the equivalent 2-1 multiplexer counts — the
storage-vs-interconnect trade-off Table 2 explores.

Run with ``--fast`` for a quicker, lower-effort sweep.
"""

import argparse

from repro.analysis import ewf_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="smaller search budgets (~4x faster)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--extra-registers", type=int, nargs="+",
                        default=[0, 1],
                        help="register budgets as offsets above the "
                             "schedule minimum")
    args = parser.parse_args()

    table = ewf_table2(fast=args.fast, seed=args.seed,
                       extra_registers=tuple(args.extra_registers))
    print(table.render())
    wins = sum(1 for row in table.rows if row[-1] == "SALSA")
    ties = sum(1 for row in table.rows if row[-1] == "tie")
    print(f"\nextended model strictly better on {wins}/{len(table.rows)} "
          f"configurations, equal on {ties} (never worse — it extends "
          f"the traditional optimum)")


if __name__ == "__main__":
    main()
