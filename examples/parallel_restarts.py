#!/usr/bin/env python
"""Parallel restarts + search telemetry on the elliptic wave filter.

Demonstrates the multi-restart engine added around the paper's observation
that "multiple trials are sometimes necessary to find the best result"
(Sec. 5):

1. fan 6 independent restarts out over worker processes (``--workers``);
2. verify the parallel result is bit-identical to the serial one;
3. print the per-restart costs/wall-clock and the merged per-move-type
   accept/rollback telemetry of the search;
4. export the full telemetry as JSON and render the winning restart's
   best-cost trace as ASCII art.
"""

import argparse
import os
import time

from repro.analysis.figures import render_cost_trace
from repro.analysis.stats import telemetry_report
from repro.bench import elliptic_wave_filter
from repro.datapath.units import HardwareSpec
from repro.io import stats_to_json
from repro.sched import schedule_graph
from repro.core import ImproveConfig, SalsaAllocator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the restart fan-out")
    parser.add_argument("--restarts", type=int, default=6)
    parser.add_argument("--fast", action="store_true",
                        help="small search budget (for CI smoke runs)")
    parser.add_argument("--json", default="",
                        help="write the telemetry JSON here")
    args = parser.parse_args()

    graph = elliptic_wave_filter()
    schedule = schedule_graph(graph, HardwareSpec.non_pipelined(), 19)
    config = ImproveConfig(max_trials=2 if args.fast else 6,
                           moves_per_trial=150 if args.fast else 400)
    allocator = SalsaAllocator(seed=7, restarts=args.restarts,
                               config=config, workers=args.workers)

    started = time.perf_counter()
    result = allocator.allocate(graph, schedule=schedule)
    wall = time.perf_counter() - started
    print(f"{result.summary()}")
    print(f"workers={args.workers}: wall-clock {wall:.2f}s, "
          f"summed search time {result.seconds:.2f}s")
    print()

    print("per-restart outcomes (winner marked *):")
    for outcome in result.outcomes:
        marker = "*" if outcome.index == result.best_restart else " "
        print(f" {marker} restart {outcome.index}: "
              f"total {outcome.cost.total:7.2f} "
              f"(mux {outcome.cost.mux_count}) in {outcome.seconds:.2f}s")
    print()

    serial = allocator.allocate(graph, schedule=schedule, workers=1)
    same = (serial.cost == result.cost and
            serial.binding.clone_state() == result.binding.clone_state())
    print(f"serial re-run bit-identical: {'yes' if same else 'NO'}")
    assert same
    print()

    report = telemetry_report(result.stats)
    print(f"search telemetry over {report['runs']} improvement runs "
          f"({report['moves_attempted']} attempts, "
          f"{report['moves_applied']} applied, "
          f"{report['uphill_budget_used']} uphill):")
    print(f"  {'move':>5} {'attempts':>9} {'applies':>8} "
          f"{'accepts':>8} {'rollbacks':>10}")
    for name, counters in report["per_move"].items():
        print(f"  {name:>5} {counters['attempts']:>9} "
              f"{counters['applies']:>8} {counters['accepts']:>8} "
              f"{counters['rollbacks']:>10}")
    print()

    json_path = args.json or os.path.join(
        os.path.dirname(__file__), "..", "results", "out",
        "parallel_restarts_example.json")
    os.makedirs(os.path.dirname(os.path.abspath(json_path)), exist_ok=True)
    with open(json_path, "w") as fh:
        fh.write(stats_to_json(result.stats))
    print(f"telemetry JSON written to {os.path.relpath(json_path)}")
    print()

    winner_stats = result.outcomes[result.best_restart].stats[-1]
    print("winning restart best-cost trace:")
    print(render_cost_trace(winner_stats))


if __name__ == "__main__":
    main()
