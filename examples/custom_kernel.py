#!/usr/bin/env python
"""Bring-your-own-kernel: allocate a custom DSP kernel end to end.

Shows the public API a downstream user follows for their own behaviour:
describe the computation with :class:`CDFGBuilder`, pick hardware
assumptions, explore latency/resource trade-offs, allocate, verify, and
inspect the datapath — here for a small biquad (2nd-order IIR) filter
section, a workload of exactly the DSP-silicon-compiler kind the paper's
introduction motivates.
"""

from repro.cdfg import CDFGBuilder, validate_cdfg
from repro.datapath.netlist import build_netlist
from repro.datapath.simulate import verify_binding
from repro.datapath.units import HardwareSpec
from repro.sched import asap_length, minimal_fu_counts, schedule_graph
from repro.core import ImproveConfig, SalsaAllocator

B0, B1, B2 = 0.2929, 0.5858, 0.2929
A1, A2 = -0.0000, 0.1716


def biquad() -> "CDFG":
    """Direct-form-II biquad: w = x - a1*w1 - a2*w2; y = b0*w + b1*w1 + b2*w2."""
    b = CDFGBuilder("biquad", cyclic=True)
    b.input("x")
    b.loop_value("w1").loop_value("w2")

    b.mul("ma1", A1, "w1", "t1")
    b.mul("ma2", A2, "w2", "t2")
    b.sub("s1", "x", "t1", "t3")
    b.sub("s2", "t3", "t2", "w")        # w = x - a1 w1 - a2 w2
    b.mul("mb0", B0, "w", "p0")
    b.mul("mb1", B1, "w1", "p1")
    b.mul("mb2", B2, "w2", "p2")
    b.add("a1", "p0", "p1", "q")
    b.add("a2", "q", "p2", "y")
    # delay line update: the new w1 is w, the new w2 is the old w1
    b.op("d1", "pass", ["w"], "w1")
    b.op("d2", "pass", ["w1"], "w2")
    b.output("y")
    graph = b.build()
    validate_cdfg(graph)
    return graph


def main() -> None:
    graph = biquad()
    print(graph.summary())
    spec = HardwareSpec.non_pipelined()
    cp = asap_length(graph, spec)
    print(f"\ncritical path: {cp} control steps")

    print("\nlatency/area trade-off:")
    for length in range(cp, cp + 4):
        counts = minimal_fu_counts(graph, spec, length)
        print(f"  {length} csteps -> {counts}")

    schedule = schedule_graph(graph, spec, cp + 1)
    result = SalsaAllocator(
        seed=3, restarts=2,
        config=ImproveConfig(max_trials=6, moves_per_trial=400)).allocate(
        graph, schedule=schedule)
    print(f"\nallocation: {result.cost}")
    verify_binding(result.binding, iterations=8)
    print("verified over 8 samples ✓")

    netlist = build_netlist(result.binding)
    print(f"datapath: {len(netlist.regs)} registers, "
          f"{len(netlist.fus)} FUs, {len(netlist.muxes)} muxes, "
          f"{len(netlist.connections)} wires")


if __name__ == "__main__":
    main()
